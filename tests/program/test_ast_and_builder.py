"""Tests for the program AST, expression language and the builder DSL."""

import pytest
from hypothesis import given, strategies as st

from repro.program import (
    Assertion,
    Assign,
    C,
    If,
    Program,
    ProgramBuilder,
    Receive,
    ReceiveNonblocking,
    Send,
    ThreadDef,
    V,
    Wait,
    While,
)
from repro.program.ast import BinOp, Const, UnaryOp, VarRef
from repro.smt.models import Model
from repro.utils.errors import ProgramError


class TestExpressions:
    def test_const_and_var_evaluate(self):
        assert C(5).evaluate({}) == 5
        assert V("x").evaluate({"x": 3}) == 3
        with pytest.raises(ProgramError):
            V("missing").evaluate({})

    def test_operator_sugar(self):
        expr = (V("x") + 1) * 2
        assert expr.evaluate({"x": 4}) == 10
        expr2 = 3 - V("x")
        assert expr2.evaluate({"x": 1}) == 2
        assert (-V("x")).evaluate({"x": 7}) == -7

    def test_comparisons_and_boolean(self):
        env = {"x": 2, "y": 5}
        assert (V("x") < V("y")).evaluate(env) is True
        assert (V("x") >= V("y")).evaluate(env) is False
        assert V("x").eq(2).evaluate(env) is True
        assert V("x").ne(2).evaluate(env) is False
        assert (V("x").eq(2).and_(V("y").eq(5))).evaluate(env) is True
        assert ((V("x") > 10).or_(V("y") > 4)).evaluate(env) is True
        assert (V("x").eq(3)).not_().evaluate(env) is True

    def test_invalid_operator_rejected(self):
        with pytest.raises(ProgramError):
            BinOp("%", C(1), C(2))
        with pytest.raises(ProgramError):
            UnaryOp("abs", C(1))
        with pytest.raises(ProgramError):
            V("x") + 1.5

    def test_variables_listed(self):
        expr = (V("a") + V("b")) * 2 + V("a")
        assert expr.variables() == ("a", "b")

    def test_str_forms(self):
        assert str(C(3)) == "3"
        assert str(V("x")) == "x"
        assert "+" in str(V("x") + 1)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_to_smt_agrees_with_evaluate(self, x, y):
        """Concrete evaluation and SMT evaluation of the same expression agree."""
        from repro.smt.terms import IntVar

        expr = ((V("x") + V("y")) * 2 + 1) > (V("x") - V("y"))
        env = {"x": x, "y": y}
        symbolic_env = {"x": IntVar("sx"), "y": IntVar("sy")}
        term = expr.to_smt(symbolic_env)
        model = Model({"sx": x, "sy": y})
        assert bool(model.eval(term)) == bool(expr.evaluate(env))


class TestProgramValidation:
    def test_valid_program(self):
        program = Program(
            "p",
            [
                ThreadDef("a", [Send("b", C(1))]),
                ThreadDef("b", [Receive("x")]),
            ],
        )
        program.validate()
        assert program.thread_names() == ["a", "b"]
        assert program.statement_count() == 2

    def test_duplicate_threads_rejected(self):
        program = Program("p", [ThreadDef("a", []), ThreadDef("a", [])])
        with pytest.raises(ProgramError):
            program.validate()

    def test_unknown_destination_rejected(self):
        program = Program("p", [ThreadDef("a", [Send("ghost", C(1))])])
        with pytest.raises(ProgramError):
            program.validate()

    def test_unknown_wait_handle_rejected(self):
        program = Program("p", [ThreadDef("a", [Wait("h")])])
        with pytest.raises(ProgramError):
            program.validate()

    def test_nested_statement_validation(self):
        body = [If(V("x") > 0, [Send("ghost", C(1))], [])]
        program = Program("p", [ThreadDef("a", body)])
        with pytest.raises(ProgramError):
            program.validate()

    def test_extra_endpoint_checks(self):
        program = Program(
            "p",
            [ThreadDef("a", [])],
            extra_endpoints={"data": "nobody"},
        )
        with pytest.raises(ProgramError):
            program.validate()
        clash = Program("p", [ThreadDef("a", [])], extra_endpoints={"a": "a"})
        with pytest.raises(ProgramError):
            clash.validate()

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program("p", []).validate()

    def test_get_thread(self):
        program = Program("p", [ThreadDef("a", [])])
        assert program.get_thread("a").name == "a"
        with pytest.raises(ProgramError):
            program.get_thread("zzz")

    def test_owner_of_endpoint(self):
        program = Program(
            "p", [ThreadDef("a", [])], extra_endpoints={"data": "a"}
        )
        assert program.owner_of_endpoint("a") == "a"
        assert program.owner_of_endpoint("data") == "a"
        with pytest.raises(ProgramError):
            program.owner_of_endpoint("nope")


class TestBuilder:
    def test_builder_constructs_program(self):
        builder = ProgramBuilder("demo")
        t0 = builder.thread("t0")
        t0.recv("x").assign("y", V("x") + 1).send("t1", V("y"))
        t0.assertion(V("y") > 0, label="positive")
        t1 = builder.thread("t1")
        t1.send("t0", 5).recv("z")
        program = builder.build()
        assert program.statement_count() == 6
        statements = program.get_thread("t0").body
        assert isinstance(statements[0], Receive)
        assert isinstance(statements[1], Assign)
        assert isinstance(statements[2], Send)
        assert isinstance(statements[3], Assertion)

    def test_builder_control_flow(self):
        builder = ProgramBuilder("demo")
        t = builder.thread("t")
        t.assign("x", 0)
        t.while_(V("x") < 3, body=[Assign("x", V("x") + 1)])
        t.if_(V("x").eq(3), then=[Assign("ok", C(1))], orelse=[Assign("ok", C(0))])
        program = builder.build()
        body = program.get_thread("t").body
        assert isinstance(body[1], While)
        assert isinstance(body[2], If)

    def test_builder_nonblocking(self):
        builder = ProgramBuilder("demo")
        sender = builder.thread("s")
        sender.send("r", 1)
        receiver = builder.thread("r")
        receiver.recv_i("x", handle="h").wait("h")
        program = builder.build()
        body = program.get_thread("r").body
        assert isinstance(body[0], ReceiveNonblocking)
        assert isinstance(body[1], Wait)

    def test_duplicate_thread_rejected(self):
        builder = ProgramBuilder("demo")
        builder.thread("a")
        with pytest.raises(ProgramError):
            builder.thread("a")

    def test_duplicate_endpoint_rejected(self):
        builder = ProgramBuilder("demo")
        builder.thread("a")
        builder.endpoint("data", "a")
        with pytest.raises(ProgramError):
            builder.endpoint("data", "a")

    def test_non_expression_payload_rejected(self):
        builder = ProgramBuilder("demo")
        thread = builder.thread("a")
        with pytest.raises(ProgramError):
            thread.send("a", "not an expression")
