"""Tests for the concolic interpreter (ProgramRunner / ThreadTask)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mcapi import ImmediateDelivery, RandomDelayDelivery, RoundRobinStrategy
from repro.program import ProgramBuilder, run_program, V, C
from repro.program.ast import Assign, Send
from repro.utils.errors import ProgramError
from repro.utils.rng import DeterministicRNG
from repro.workloads import (
    branching_consumer,
    client_server,
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    scatter_gather,
    token_ring,
)


class TestBasicExecution:
    def test_figure1_runs_clean(self):
        run = run_program(figure1_program(), seed=0)
        assert run.ok
        assert run.final_environments["t0"].keys() == {"A", "B"}
        assert set(run.final_environments["t0"].values()) == {10, 20}

    def test_assignment_and_arithmetic(self):
        builder = ProgramBuilder("arith")
        t = builder.thread("t")
        t.assign("x", 4).assign("y", V("x") * 3 + 2).assertion(V("y").eq(C(14)))
        run = run_program(builder.build(), seed=0)
        assert run.ok
        assert run.final_environments["t"]["y"] == 14

    def test_branching_follows_concrete_values(self):
        builder = ProgramBuilder("branch")
        t = builder.thread("t")
        t.assign("x", 10)
        t.if_(V("x") > 5, then=[Assign("r", C(1))], orelse=[Assign("r", C(0))])
        run = run_program(builder.build(), seed=0)
        assert run.final_environments["t"]["r"] == 1
        branches = run.trace.branches()
        assert len(branches) == 1 and branches[0].outcome is True

    def test_while_loop(self):
        builder = ProgramBuilder("loop")
        t = builder.thread("t")
        t.assign("i", 0)
        t.while_(V("i") < 4, body=[Assign("i", V("i") + 1)])
        t.assertion(V("i").eq(C(4)))
        run = run_program(builder.build(), seed=0)
        assert run.ok
        # 5 branch events: 4 true iterations + 1 final false check.
        assert len(run.trace.branches()) == 5

    def test_assertion_failure_recorded(self):
        builder = ProgramBuilder("fail")
        t = builder.thread("t")
        t.assign("x", 1).assertion(V("x").eq(C(2)), label="never")
        run = run_program(builder.build(), seed=0)
        assert not run.ok
        assert run.assertion_failures[0].label == "never"

    def test_deadlock_reported(self):
        builder = ProgramBuilder("deadlock")
        builder.thread("a").recv("x")
        builder.thread("b").recv("y")
        run = run_program(builder.build(), seed=0)
        assert run.deadlocked
        assert not run.ok

    def test_message_passing_values(self):
        builder = ProgramBuilder("chain")
        a = builder.thread("a")
        a.assign("v", 41).send("b", V("v") + 1)
        b = builder.thread("b")
        b.recv("w").assertion(V("w").eq(C(42)))
        run = run_program(builder.build(), seed=3)
        assert run.ok
        assert run.final_environments["b"]["w"] == 42


class TestSymbolicLabels:
    def test_send_payload_expression_uses_recv_symbols(self):
        """A forwarded value's symbolic payload mentions the receive symbol."""
        run = run_program(pipeline(3), seed=0)
        sends = run.trace.sends()
        # The second stage forwards recv value + 1: its payload expression
        # must mention a recv_val symbol.
        forwarded = [s for s in sends if s.thread == "stage1"]
        assert forwarded, "stage1 should send"
        assert "recv_val" in str(forwarded[0].payload_expr)

    def test_branch_condition_symbolic(self):
        run = run_program(branching_consumer(), seed=0)
        (branch,) = run.trace.branches()
        assert "recv_val" in str(branch.condition)

    def test_assertion_condition_symbolic(self):
        run = run_program(figure1_program(assert_a_is_y=True), seed=0)
        (assertion,) = run.trace.assertions()
        assert "recv_val_0" in str(assertion.condition)

    def test_nonblocking_value_bound_at_wait(self):
        run = run_program(nonblocking_fanin(2), seed=0)
        assert run.final_environments["recv"].keys() == {"m0", "m1"}
        values = set(run.final_environments["recv"].values())
        assert values == {100, 200}


class TestPoliciesAndStrategies:
    def test_immediate_policy_runs(self):
        run = run_program(figure1_program(), seed=0, policy=ImmediateDelivery())
        assert run.ok

    def test_random_delay_policy_runs(self):
        policy = RandomDelayDelivery(DeterministicRNG(3), mean_delay=1.0)
        run = run_program(figure1_program(), seed=0, policy=policy)
        assert run.ok

    def test_round_robin_strategy_runs(self):
        run = run_program(figure1_program(), seed=0, strategy=RoundRobinStrategy())
        assert run.ok

    def test_delay_nondeterminism_changes_observed_matching(self):
        """Across seeds the racy fan-in receiver observes different orders."""
        orders = set()
        for seed in range(15):
            run = run_program(racy_fanin(3), seed=seed)
            env = run.final_environments["recv"]
            orders.add(tuple(env[f"m{i}"] for i in range(3)))
        assert len(orders) >= 2


class TestWorkloadsRunClean:
    @pytest.mark.parametrize(
        "program",
        [
            figure1_program(),
            racy_fanin(3),
            racy_fanin(2, messages_per_sender=2),
            pipeline(4),
            token_ring(3),
            token_ring(3, rounds=2),
            scatter_gather(3),
            client_server(2),
            nonblocking_fanin(3),
            branching_consumer(),
        ],
        ids=lambda p: p.name,
    )
    def test_workload_completes_without_deadlock(self, program):
        for seed in range(3):
            run = run_program(program, seed=seed)
            assert not run.deadlocked
            run.trace.validate()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pipeline_assertion_holds_under_any_seed(self, seed):
        """The pipeline's end-to-end assertion is schedule-independent."""
        run = run_program(pipeline(4), seed=seed)
        assert run.ok

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_scatter_gather_sum_holds_under_any_seed(self, seed):
        run = run_program(scatter_gather(3), seed=seed)
        assert run.ok
