"""Tests for the SMT encoding: POrder, PMatchPairs, PUnique, PEvents, PProp."""

import pytest

from repro.encoding import (
    EncoderOptions,
    MatchPairStrategy,
    MatchProperty,
    ReceiveValueProperty,
    TermProperty,
    TraceAssertionsProperty,
    TraceEncoder,
    branch_constraints,
    clock_name,
    clock_var,
    match_name,
    match_pair_constraints,
    match_predicate,
    match_var,
    negated_properties,
    pair_fifo_constraints,
    program_order_constraints,
    uniqueness_constraints,
    uniqueness_constraints_pruned,
)
from repro.encoding.witness import decode_witness
from repro.matching import endpoint_match_pairs
from repro.program import run_program
from repro.smt import CheckResult, Eq, IntVal, Solver
from repro.smt.models import Model
from repro.utils.errors import EncodingError
from repro.workloads import (
    X_VALUE,
    Y_VALUE,
    branching_consumer,
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
)


@pytest.fixture(scope="module")
def figure1_trace():
    return run_program(figure1_program(), seed=0).trace


@pytest.fixture(scope="module")
def figure1_problem(figure1_trace):
    return TraceEncoder().encode(figure1_trace, properties=[])


class TestOrderConstraints:
    def test_one_constraint_per_adjacent_pair(self, figure1_trace):
        constraints = program_order_constraints(figure1_trace)
        assert len(constraints) == len(figure1_trace.program_order_pairs())
        assert all(c.kind == "lt" for c in constraints)

    def test_program_order_unsatisfiable_when_reversed(self, figure1_trace):
        solver = Solver()
        solver.add_all(program_order_constraints(figure1_trace))
        # Add a reversal of the first pair: must become UNSAT.
        before, after = figure1_trace.program_order_pairs()[0]
        from repro.smt import Lt

        assert solver.check(Lt(clock_var(after), clock_var(before))) is CheckResult.UNSAT

    def test_pair_fifo_constraints_exist_for_same_pair_sends(self):
        trace = run_program(racy_fanin(2, messages_per_sender=2), seed=0).trace
        constraints = pair_fifo_constraints(trace)
        assert constraints, "two sends over one pair should induce FIFO constraints"


class TestMatchPredicate:
    def test_match_structure(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        recv_id = pairs.receive_ids()[0]
        recv = pairs.receive(recv_id)
        send = pairs.send(pairs.get_sends(recv_id)[0])
        term = match_predicate(recv, send)
        text = str(term)
        assert clock_name(send.event_id) in text
        assert clock_name(recv.completion_event_id) in text
        assert recv.value_symbol in text
        assert match_name(recv_id) in text

    def test_match_rejects_wrong_endpoint(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        # recv(C) lives on t1's endpoint; a send to t0 must be rejected.
        recv_c = next(
            op for op in figure1_trace.receive_operations() if op.thread == "t1"
        )
        send_to_t0 = next(
            s for s in figure1_trace.sends() if s.destination.node == 0
        )
        with pytest.raises(EncodingError):
            match_predicate(recv_c, send_to_t0)

    def test_nonblocking_match_uses_wait_clock(self):
        trace = run_program(nonblocking_fanin(2), seed=0).trace
        pairs = endpoint_match_pairs(trace)
        op = pairs.receive(pairs.receive_ids()[0])
        assert not op.blocking
        send = pairs.send(pairs.get_sends(op.recv_id)[0])
        text = str(match_predicate(op, send))
        assert clock_name(op.completion_event_id) in text
        assert clock_name(op.issue_event_id) not in text

    def test_match_pair_constraints_one_per_receive(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        constraints = match_pair_constraints(figure1_trace, pairs)
        assert len(constraints) == len(pairs)


class TestUniqueness:
    def test_all_pairs_count(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        n = len(pairs)
        assert len(uniqueness_constraints(pairs)) == n * (n - 1) // 2

    def test_pruned_is_smaller_but_equivalent_here(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        full = uniqueness_constraints(pairs)
        pruned = uniqueness_constraints_pruned(pairs)
        assert len(pruned) <= len(full)
        # recv(C) shares no candidates with the t0 receives, so pruning helps.
        assert len(pruned) == 1


class TestEventsAndProperties:
    def test_branch_constraints_follow_outcome(self):
        trace = run_program(branching_consumer(), seed=0).trace
        (branch,) = trace.branches()
        (constraint,) = branch_constraints(trace)
        if branch.outcome:
            assert constraint == branch.condition
        else:
            assert constraint.kind == "not"

    def test_trace_assertions_property(self):
        trace = run_program(figure1_program(assert_a_is_y=True), seed=0).trace
        prop = TraceAssertionsProperty()
        term = prop.term(trace)
        assert "recv_val_0" in str(term)

    def test_negated_properties_none_when_empty(self, figure1_trace):
        assert negated_properties(figure1_trace, []) is None
        assert (
            negated_properties(figure1_trace, [TraceAssertionsProperty()]) is None
        ), "figure1 without assertions has no property content"

    def test_receive_value_property(self, figure1_trace):
        prop = ReceiveValueProperty(0, lambda v: Eq(v, IntVal(Y_VALUE)), name="A-is-Y")
        term = prop.term(figure1_trace)
        assert "recv_val_0" in str(term)
        with pytest.raises(EncodingError):
            ReceiveValueProperty(99, lambda v: Eq(v, IntVal(0))).term(figure1_trace)

    def test_match_property(self, figure1_trace):
        prop = MatchProperty(0, [0, 2])
        term = prop.term(figure1_trace)
        assert match_name(0) in str(term)
        with pytest.raises(EncodingError):
            MatchProperty(0, []).term(figure1_trace)

    def test_term_property_passthrough(self, figure1_trace):
        from repro.smt import TRUE

        assert TermProperty(TRUE).term(figure1_trace) == TRUE


class TestEncoder:
    def test_problem_structure(self, figure1_problem):
        summary = figure1_problem.size_summary()
        assert summary["receives"] == 3
        assert summary["sends"] == 3
        assert summary["candidate_pairs"] == 5
        assert summary["match_constraints"] == 3
        names = figure1_problem.variable_names()
        assert len(names["clocks"]) == 6
        assert len(names["matches"]) == 3

    def test_base_problem_is_satisfiable(self, figure1_problem):
        solver = Solver()
        solver.add_all(figure1_problem.assertions(include_property=False))
        assert solver.check() is CheckResult.SAT

    def test_smtlib_export(self, figure1_problem):
        script = figure1_problem.to_smtlib()
        assert "(set-logic" in script
        assert "(check-sat)" in script
        assert clock_name(0) in script
        assert "PMatchPairs" in script  # the structural comment

    def test_precise_strategy_option(self, figure1_trace):
        encoder = TraceEncoder(EncoderOptions(match_strategy=MatchPairStrategy.PRECISE))
        problem = encoder.encode(figure1_trace, properties=[])
        assert problem.size_summary()["candidate_pairs"] == 5

    def test_explicit_match_pairs_are_validated(self, figure1_trace):
        from repro.matching import MatchPairs

        bad = MatchPairs(candidates={0: [99]}, receives={}, sends={})
        with pytest.raises(Exception):
            TraceEncoder().encode(figure1_trace, match_pairs=bad)

    def test_options_change_problem_size(self, figure1_trace):
        small = TraceEncoder(
            EncoderOptions(include_clock_bounds=False, prune_uniqueness=True)
        ).encode(figure1_trace, properties=[])
        large = TraceEncoder(
            EncoderOptions(include_clock_bounds=True, prune_uniqueness=False)
        ).encode(figure1_trace, properties=[])
        assert len(small.assertions()) < len(large.assertions())

    def test_pair_fifo_option_adds_extras(self):
        trace = run_program(racy_fanin(2, messages_per_sender=2), seed=0).trace
        base = TraceEncoder().encode(trace, properties=[])
        fifo = TraceEncoder(EncoderOptions(enforce_pair_fifo=True)).encode(
            trace, properties=[]
        )
        assert len(fifo.extras) > len(base.extras)


class TestModelsRespectEncoding:
    def test_every_model_satisfies_match_semantics(self, figure1_trace):
        """Each model of the base problem picks a candidate send, transfers its
        value, and orders the send before the receive."""
        problem = TraceEncoder().encode(figure1_trace, properties=[])
        solver = Solver()
        solver.add_all(problem.assertions(include_property=False))
        assert solver.check() is CheckResult.SAT
        model = solver.model()
        witness = decode_witness(problem, model)
        sends = {s.send_id: s for s in figure1_trace.sends()}
        for op in figure1_trace.receive_operations():
            send_id = witness.matching[op.recv_id]
            send = sends[send_id]
            assert send.destination == op.endpoint
            assert witness.clocks[send.event_id] < witness.clocks[op.completion_event_id]
            assert witness.receive_values[op.recv_id] == send.payload_value
        # Uniqueness.
        assert len(set(witness.matching.values())) == len(witness.matching)

    def test_decode_witness_rejects_non_candidate(self, figure1_problem):
        bogus = Model({match_name(r): 999 for r in range(3)})
        with pytest.raises(EncodingError):
            decode_witness(figure1_problem, bogus)

    def test_branch_outcomes_are_enforced(self):
        """The encoding must pin the branch to the recorded outcome."""
        run = run_program(branching_consumer(), seed=0).trace
        (branch,) = run.branches()
        problem = TraceEncoder().encode(run, properties=[])
        solver = Solver()
        solver.add_all(problem.assertions(include_property=False))
        # Asserting the opposite outcome must be UNSAT.
        from repro.smt import Not

        flipped = Not(branch.condition) if branch.outcome else branch.condition
        assert solver.check(flipped) is CheckResult.UNSAT
