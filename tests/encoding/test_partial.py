"""Unit tests of the partial-match extension (``repro.encoding.partial``)."""

import pytest

from repro.encoding import (
    DeadlockProperty,
    EncoderOptions,
    OrphanMessageProperty,
    TraceEncoder,
    unmatched_name,
)
from repro.encoding.variables import unmatched_sentinel
from repro.encoding.witness import decode_witness
from repro.program.builder import ProgramBuilder
from repro.program.ast import C, V
from repro.program.statictrace import static_trace
from repro.smt.backend import create_backend
from repro.smt.dpllt import CheckResult
from repro.utils.errors import EncodingError
from repro.workloads import circular_wait, figure1_program, starved_fanin

PARTIAL = EncoderOptions(partial_matches=True, enforce_pair_fifo=True)


def _check(program, prop, options=PARTIAL):
    trace = static_trace(program)
    problem = TraceEncoder(options).encode(trace, properties=[prop])
    backend = create_backend(None)
    backend.add_all(problem.assertions())
    outcome = backend.check()
    witness = (
        decode_witness(problem, backend.model())
        if outcome is CheckResult.SAT
        else None
    )
    return outcome, witness, problem


class TestDeadlockDetection:
    def test_figure1_is_deadlock_free(self):
        outcome, _, _ = _check(figure1_program(), DeadlockProperty())
        assert outcome is CheckResult.UNSAT

    def test_starved_fanin_deadlocks(self):
        outcome, witness, _ = _check(starved_fanin(2, extra_receives=1), DeadlockProperty())
        assert outcome is CheckResult.SAT
        # Exactly one of the three receives starves; both sends are consumed.
        assert len(witness.unmatched_receives) == 1
        assert len(witness.matching) == 2
        assert witness.orphan_sends == []

    def test_circular_wait_deadlocks_with_every_receive_stuck(self):
        outcome, witness, _ = _check(circular_wait(2), DeadlockProperty())
        assert outcome is CheckResult.SAT
        assert sorted(witness.unmatched_receives) == [0, 1]
        # Neither ring send executes: they sit after the stuck receives.
        assert witness.orphan_sends == []
        assert witness.matching == {}

    def test_kickstarted_ring_is_deadlock_free(self):
        outcome, _, _ = _check(circular_wait(2, kickstart=True), DeadlockProperty())
        assert outcome is CheckResult.UNSAT

    def test_lost_message_is_not_a_deadlock(self):
        # Two sends race to one receive: the loser is orphaned, but the
        # receiver always completes — no deadlock.
        builder = ProgramBuilder("lost")
        builder.thread("recv").recv("a")
        builder.thread("s0").send("recv", C(1))
        builder.thread("s1").send("recv", C(2))
        outcome, _, _ = _check(builder.build(), DeadlockProperty())
        assert outcome is CheckResult.UNSAT

    def test_deadlock_witness_names_stuck_endpoint(self):
        outcome, witness, problem = _check(
            starved_fanin(1, extra_receives=1), DeadlockProperty()
        )
        assert outcome is CheckResult.SAT
        text = witness.deadlock_description(problem)
        assert "never completes" in text
        assert "thread recv" in text


class TestOrphanDetection:
    def test_lost_message_orphan_found_in_base_mode(self):
        builder = ProgramBuilder("lost")
        builder.thread("recv").recv("a")
        builder.thread("s0").send("recv", C(1))
        builder.thread("s1").send("recv", C(2))
        outcome, witness, _ = _check(
            builder.build(), OrphanMessageProperty(), options=EncoderOptions()
        )
        assert outcome is CheckResult.SAT
        assert len(witness.orphan_sends) == 1

    def test_balanced_fanin_has_no_orphans(self):
        outcome, _, _ = _check(
            figure1_program(), OrphanMessageProperty(), options=EncoderOptions()
        )
        assert outcome is CheckResult.UNSAT

    def test_partial_mode_does_not_flag_unexecuted_sends(self):
        # The ring sends of circular_wait never execute, so they are not
        # orphans — and the deadlocked partial executions have no executed
        # send left unconsumed either.
        outcome, _, _ = _check(circular_wait(2), OrphanMessageProperty())
        assert outcome is CheckResult.UNSAT


class TestEncoderPlumbing:
    def test_deadlock_property_requires_partial_mode(self):
        trace = static_trace(figure1_program())
        with pytest.raises(EncodingError, match="partial"):
            TraceEncoder(EncoderOptions()).encode(
                trace, properties=[DeadlockProperty()]
            )

    def test_partial_problem_reports_blocking_constraints_and_variables(self):
        trace = static_trace(starved_fanin(2, extra_receives=1))
        problem = TraceEncoder(PARTIAL).encode(trace, properties=[DeadlockProperty()])
        assert problem.partial_matches
        assert problem.size_summary()["blocking_constraints"] == 3
        names = problem.variable_names()
        assert names["unmatched"] == [unmatched_name(r) for r in range(3)]
        assert "PMatchPartial" in problem.to_smtlib()

    def test_base_problem_is_unchanged(self):
        trace = static_trace(figure1_program())
        problem = TraceEncoder(EncoderOptions()).encode(trace)
        assert not problem.partial_matches
        assert problem.blocking == []
        assert "PMatchPairs" in problem.to_smtlib()

    def test_sentinels_are_distinct_and_negative(self):
        values = {unmatched_sentinel(r) for r in range(10)}
        assert len(values) == 10
        assert all(v < 0 for v in values)

    def test_partial_mode_admits_complete_executions(self):
        # With no property asserted, the partial problem must stay feasible
        # and in particular admit the all-matched (complete) executions.
        trace = static_trace(figure1_program())
        problem = TraceEncoder(PARTIAL).encode(trace, properties=[])
        backend = create_backend(None)
        backend.add_all(problem.assertions())
        assert backend.check() is CheckResult.SAT
