"""Tests for match-pair generation (endpoint over-approximation and precise DFS)."""

import pytest

from repro.matching import (
    MatchPairs,
    count_feasible_matchings,
    endpoint_match_pairs,
    enumerate_matchings,
    matching_is_feasible,
    precise_match_pairs,
)
from repro.program import run_program
from repro.utils.errors import MatchPairError
from repro.workloads import (
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    token_ring,
)


@pytest.fixture(scope="module")
def figure1_trace():
    return run_program(figure1_program(), seed=0).trace


class TestEndpointMatchPairs:
    def test_figure1_candidates(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        # recv(A) and recv(B) are on t0's endpoint: candidates = the 2 sends to t0.
        # recv(C) on t1's endpoint: candidate = the 1 send to t1.
        sizes = sorted(len(pairs.get_sends(r)) for r in pairs.receive_ids())
        assert sizes == [1, 2, 2]
        assert pairs.pair_count() == 5
        pairs.validate(figure1_trace)

    def test_pipeline_candidates_are_singletons(self):
        trace = run_program(pipeline(4), seed=0).trace
        pairs = endpoint_match_pairs(trace)
        assert all(len(pairs.get_sends(r)) == 1 for r in pairs.receive_ids())

    def test_racy_fanin_all_sends_candidate(self):
        trace = run_program(racy_fanin(4), seed=0).trace
        pairs = endpoint_match_pairs(trace)
        for recv_id in pairs.receive_ids():
            assert len(pairs.get_sends(recv_id)) == 4

    def test_unknown_receive_rejected(self, figure1_trace):
        pairs = endpoint_match_pairs(figure1_trace)
        with pytest.raises(MatchPairError):
            pairs.get_sends(99)

    def test_from_mapping_validates_endpoints(self, figure1_trace):
        # recv(C) (recv_id of thread t1) cannot match a send targeting t0.
        sends_to_t0 = [
            s.send_id
            for s in figure1_trace.sends()
            if s.destination.node == 0
        ]
        recv_c = [
            op.recv_id
            for op in figure1_trace.receive_operations()
            if op.thread == "t1"
        ][0]
        with pytest.raises(MatchPairError):
            MatchPairs.from_mapping(figure1_trace, {recv_c: sends_to_t0})

    def test_summary_and_subset(self, figure1_trace):
        endpoint = endpoint_match_pairs(figure1_trace)
        precise = precise_match_pairs(figure1_trace)
        assert precise.is_subset_of(endpoint)
        summary = endpoint.summary()
        assert summary["receives"] == 3
        assert summary["max_candidates"] == 2


class TestPreciseMatchPairs:
    def test_figure1_precise_equals_endpoint(self, figure1_trace):
        """For Figure 1 every endpoint-compatible pair is actually reachable."""
        endpoint = endpoint_match_pairs(figure1_trace)
        precise = precise_match_pairs(figure1_trace)
        assert precise.candidates == endpoint.candidates

    def test_figure1_has_exactly_two_matchings(self, figure1_trace):
        assert count_feasible_matchings(figure1_trace) == 2

    def test_matchings_are_injective_and_acyclic(self, figure1_trace):
        for matching in enumerate_matchings(figure1_trace):
            assert len(set(matching.values())) == len(matching)
            assert matching_is_feasible(figure1_trace, matching)

    def test_token_ring_precise_prunes_infeasible_pairs(self):
        """In a ring every receive has a unique feasible sender even though
        several sends target the same endpoint across rounds."""
        trace = run_program(token_ring(3, rounds=2), seed=0).trace
        endpoint = endpoint_match_pairs(trace)
        precise = precise_match_pairs(trace)
        assert precise.is_subset_of(endpoint)
        assert precise.pair_count() <= endpoint.pair_count()
        # Ring forwarding is deterministic: exactly one complete matching.
        assert count_feasible_matchings(trace) == 1

    def test_racy_fanin_matching_count_is_factorial(self):
        trace = run_program(racy_fanin(3), seed=0).trace
        assert count_feasible_matchings(trace) == 6
        trace4 = run_program(racy_fanin(4), seed=0).trace
        assert count_feasible_matchings(trace4) == 24

    def test_limit_caps_enumeration(self):
        trace = run_program(racy_fanin(4), seed=0).trace
        assert count_feasible_matchings(trace, limit=5) == 5
        limited = precise_match_pairs(trace, limit=1)
        full = precise_match_pairs(trace)
        assert limited.is_subset_of(full)

    def test_nonblocking_uses_wait_for_feasibility(self):
        trace = run_program(nonblocking_fanin(2), seed=0).trace
        # Both orders are feasible because only the waits constrain order.
        assert count_feasible_matchings(trace) == 2

    def test_infeasible_matching_detected_and_pruned(self):
        """A receive cannot match a send its own thread performs *later*.

        Thread ``a`` receives and then sends to itself; thread ``b`` sends to
        ``a``.  The endpoint over-approximation pairs a's receive with both
        sends, but the precise analysis prunes a's own (later) send because
        matching it would create a happens-before cycle.
        """
        from repro.program import ProgramBuilder, C

        builder = ProgramBuilder("self_send")
        a = builder.thread("a")
        a.recv("x")
        a.send("a", C(1))
        b = builder.thread("b")
        b.send("a", C(2))
        trace = run_program(builder.build(), seed=0).trace

        sends = {s.thread: s.send_id for s in trace.sends()}
        (recv_op,) = trace.receive_operations()
        assert not matching_is_feasible(trace, {recv_op.recv_id: sends["a"]})
        assert matching_is_feasible(trace, {recv_op.recv_id: sends["b"]})

        endpoint = endpoint_match_pairs(trace)
        precise = precise_match_pairs(trace)
        assert set(endpoint.get_sends(recv_op.recv_id)) == {sends["a"], sends["b"]}
        assert precise.get_sends(recv_op.recv_id) == [sends["b"]]
