"""Daemon smoke under an inherited fault plan (the CI chaos job's core).

Unlike the in-process harness elsewhere in this suite, the daemon here is
a *real subprocess* started with ``REPRO_FAULT_PLAN`` in its environment:
the plan travels through exec + module import, its forked workers crash on
schedule, and the daemon still answers every query, reports the crashes in
its stats, and shuts down cleanly on request.
"""

import os
import socket
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.service.client import ServiceClient

#: Workers exit on their third request; re-dispatch recovers every time.
SMOKE_PLAN = "pool.worker.request:exit:match=figure1,after=1,max=1"


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.mark.parametrize("plan", [SMOKE_PLAN])
def test_daemon_survives_inherited_fault_plan(plan, tmp_path):
    port = _free_port()
    env = dict(os.environ)
    env[faults.ENV_VAR] = plan
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.verification.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "serve",
            "--port",
            str(port),
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), 0.2).close()
                break
            except OSError:
                time.sleep(0.1)
        else:
            raise RuntimeError("daemon subprocess did not come up")

        with ServiceClient(f"127.0.0.1:{port}", backoff_s=0.01) as client:
            # The batch rides through the injected worker crash: the
            # second figure1 kills its worker mid-batch, the pool
            # re-dispatches, and every verdict still comes back right.
            results = client.verify_batch(
                [
                    {"workload": "figure1"},
                    {"workload": "figure1"},
                    {"workload": "pipeline", "params": {"senders": 3}},
                ]
            )
            assert [r.verdict.value for r in results] == [
                "violation",
                "violation",
                "safe",
            ]
            stats = client.stats()
            assert stats["worker_crashes"] >= 1
            assert stats["redispatches"] >= 1
            # The daemon's env-parsed plan shows up in its stats reply.
            assert "faults" in stats
            client.shutdown()

        assert daemon.wait(timeout=20.0) == 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10.0)
