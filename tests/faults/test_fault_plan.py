"""Unit tests for the fault-injection harness itself: plan parsing,
deterministic firing schedules, garble semantics and process-wide
installation."""

import json

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.utils.errors import ReproError


class TestParsing:
    def test_compact_form_round_trips(self):
        text = "seed=7;pool.worker.request:exit:after=2,max=2;protocol.decode:garble:p=0.25,max=0"
        plan = FaultPlan.parse(text)
        assert plan.seed == 7
        assert [r.site for r in plan.rules] == [
            "pool.worker.request",
            "protocol.decode",
        ]
        assert plan.rules[0].kind == "exit"
        assert plan.rules[0].after == 2
        assert plan.rules[0].max_fires == 2
        assert plan.rules[1].p == 0.25
        assert FaultPlan.parse(plan.encode()).encode() == plan.encode()

    def test_json_form(self):
        payload = {
            "seed": 3,
            "rules": [{"site": "cache.write.entry", "kind": "crash", "p": 0.5}],
        }
        plan = FaultPlan.parse(json.dumps(payload))
        assert plan.seed == 3
        assert plan.rules[0].site == "cache.write.entry"
        assert plan.rules[0].p == 0.5

    def test_empty_plan(self):
        assert FaultPlan.parse("").rules == []

    @pytest.mark.parametrize(
        "text",
        ["justasite", "site:notakind", "site:crash:bogus=1", "site:crash:p"],
    )
    def test_bad_rules_rejected(self, text):
        with pytest.raises(ReproError):
            FaultPlan.parse(text)


class TestDrawSchedule:
    def test_after_and_max(self):
        plan = FaultPlan(["s:crash:after=2,max=2"])
        fired = [plan.draw("s") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert plan.counters() == {"s:crash": 2}
        assert plan.total_fires() == 2

    def test_unlimited_fires(self):
        plan = FaultPlan(["s:crash:max=0"])
        assert all(plan.draw("s") is not None for _ in range(5))

    def test_site_glob(self):
        plan = FaultPlan(["pool.worker.*:crash:max=0"])
        assert plan.draw("pool.worker.request") is not None
        assert plan.draw("pool.worker.reply") is not None
        assert plan.draw("protocol.decode") is None

    def test_match_tag_selects_poison_query(self):
        plan = FaultPlan(["s:crash:max=0,match=figure1"])
        assert plan.draw("s", tag="figure1") is not None
        assert plan.draw("s", tag="pipeline") is None
        assert plan.draw("s") is None

    def test_probability_is_deterministic_per_seed(self):
        first = FaultPlan(["s:crash:p=0.5,max=0"], seed=11)
        pattern_a = [first.draw("s") is not None for _ in range(32)]
        # Rebuilding the same plan replays the identical schedule.
        second = FaultPlan(["s:crash:p=0.5,max=0"], seed=11)
        pattern_b = [second.draw("s") is not None for _ in range(32)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_first_matching_rule_wins_but_all_count_hits(self):
        plan = FaultPlan(["s:crash:max=1", "s:hang:max=0"])
        first = plan.draw("s")
        assert first.kind == "crash"
        second = plan.draw("s")
        assert second.kind == "hang"
        assert plan.rules[1].hits == 2  # counted even while rule 0 fired


class TestGarble:
    def test_garble_preserves_terminator_and_is_detectable(self):
        frame = b'{"jsonrpc":"2.0","id":1}\n'
        mangled = faults.garble(frame)
        assert mangled.endswith(b"\n")
        assert mangled != frame
        with pytest.raises(ValueError):
            json.loads(mangled.decode("utf-8", errors="strict"))

    def test_garble_empty(self):
        assert faults.garble(b"") == b""


class TestFire:
    def test_crash_raises_chosen_class(self):
        faults.install(FaultPlan(["s:crash"]))
        with pytest.raises(KeyError):
            faults.fire("s", crash=KeyError)

    def test_garble_kind_corrupts_payload(self):
        faults.install(FaultPlan(["s:garble"]))
        assert faults.fire("s", data=b"abc\n") != b"abc\n"

    def test_slow_returns_data(self):
        faults.install(FaultPlan(["s:slow:delay=0.001"]))
        assert faults.fire("s", data=b"abc\n") == b"abc\n"

    def test_no_plan_is_passthrough(self):
        faults.clear()
        assert faults.ACTIVE is None
        assert faults.fire("s", data=b"abc\n") == b"abc\n"
        assert faults.draw("s") is None


class TestInstall:
    def test_install_string_and_clear(self):
        plan = faults.install("s:crash")
        assert faults.ACTIVE is plan
        faults.clear()
        assert faults.ACTIVE is None

    def test_export_and_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.install("seed=5;s:exit:after=1", export=True)
        import os

        encoded = os.environ[faults.ENV_VAR]
        faults.install(None)
        restored = faults.install_from_env()
        assert restored is not None
        assert restored.encode() == encoded
        faults.clear()
        assert faults.ENV_VAR not in os.environ

    def test_rule_validation(self):
        with pytest.raises(ReproError):
            FaultRule(site="s", kind="meltdown")
        with pytest.raises(ReproError):
            FaultRule(site="", kind="crash")
