"""Graceful degradation ladders under injected faults.

Two ladders, both answering the *same verdict* a healthy run would:

* engine: native SAT kernel → pure-Python propagation when the kernel
  fails to load or faults at runtime (watch lists migrate back to Python
  mid-solve);
* backend: ``smtlib`` / ``smtlib-pipe`` → the in-tree ``dpllt`` engine
  when the external solver binary dies twice on one check, recorded as a
  structured degradation event in the executor's statistics.
"""

import pytest

from repro import faults
from repro.service.pool import WorkerPool
from repro.smt import satkernel
from repro.smt import Ge, IntVal, IntVar, Le
from repro.smt.backend import SmtLibPipeBackend
from repro.smt.sat import SatResult, SatSolver
from repro.utils.errors import SolverError

_KERNEL_AVAILABLE = satkernel.load() is not None

#: UNSAT over two variables — every solve path needs several propagation
#: rounds, so a mid-solve kernel fault always has work left to hand over.
_UNSAT_CNF = [[1, 2], [1, -2], [-1, 2], [-1, -2]]


def _fresh_cnf_solver(**kwargs):
    solver = SatSolver(**kwargs)
    solver.new_var()
    solver.new_var()
    solver.add_clauses(_UNSAT_CNF)
    return solver


class TestKernelLadder:
    def test_load_fault_falls_back_to_python(self):
        faults.install("kernel.load:crash:max=0")
        solver = _fresh_cnf_solver()
        assert solver.kernel_active is False
        assert solver.solve() is SatResult.UNSAT

    @pytest.mark.skipif(not _KERNEL_AVAILABLE, reason="native kernel not built")
    def test_runtime_fault_degrades_mid_solve(self):
        faults.install("kernel.propagate:crash:after=1,max=1")
        solver = _fresh_cnf_solver()
        assert solver.kernel_active is True
        assert solver.solve() is SatResult.UNSAT  # same verdict, new engine
        assert solver.kernel_active is False
        assert solver.stats.kernel_faults == 1

    @pytest.mark.skipif(not _KERNEL_AVAILABLE, reason="native kernel not built")
    def test_degraded_solver_matches_clean_python_solver(self):
        clean = _fresh_cnf_solver(use_kernel=False)
        expected = clean.solve()
        faults.install("kernel.propagate:crash:after=1,max=1")
        degraded = _fresh_cnf_solver()
        assert degraded.solve() is expected


class TestPipeLadder:
    def test_one_crash_is_replayed_transparently(self, pipe_stub):
        backend = SmtLibPipeBackend(command=pipe_stub())
        x = IntVar("x")
        backend.add(Ge(x, IntVal(1)), Le(x, IntVal(10)))
        faults.install("pipe.check:crash:max=1")
        assert backend.check().name == "SAT"
        assert backend.statistics()["pipe_restarts"] == 1
        backend.close()

    def test_two_crashes_exhaust_the_replay(self, pipe_stub):
        backend = SmtLibPipeBackend(command=pipe_stub())
        x = IntVar("x")
        backend.add(Ge(x, IntVal(1)))
        faults.install("pipe.check:crash:max=2")
        with pytest.raises(SolverError, match="failed twice"):
            backend.check()
        backend.close()


class TestBackendLadder:
    def test_lost_solver_degrades_to_dpllt(self, pipe_stub, monkeypatch):
        # The external solver dies on both attempts of the first check;
        # the executor discards the broken session, re-solves on dpllt,
        # and still reports figure1's real verdict.
        monkeypatch.setenv("REPRO_SMT_SOLVER", pipe_stub())
        faults.install("pipe.check:crash:max=2")
        pool = WorkerPool(jobs=0)
        try:
            response = pool.submit(
                {"op": "verify", "workload": "figure1", "backend": "smtlib-pipe"}
            )
            assert response["ok"]
            assert response["result"]["verdict"] == "violation"
            stats = response["result"]["solver_statistics"]
            assert stats["degraded_from"] == "smtlib-pipe"
            events = pool.statistics()["degradations"]
            assert len(events) == 1
            assert events[0]["layer"] == "backend"
            assert events[0]["from"] == "smtlib-pipe"
            assert events[0]["to"] == "dpllt"
            assert events[0]["workload"] == "figure1"
        finally:
            pool.close()

    def test_native_backend_is_not_laddered(self, monkeypatch):
        # dpllt has no fallback below it; a genuine solver bug must
        # surface as an error, never as a silently different engine.
        pool = WorkerPool(jobs=0)
        try:
            executor = pool._inline
            assert "dpllt" not in ("smtlib", "smtlib-pipe")
            response = pool.submit({"op": "verify", "workload": "figure1"})
            assert response["ok"]
            assert "degraded_from" not in (
                response["result"].get("solver_statistics") or {}
            )
            assert executor.degradations == []
        finally:
            pool.close()
