"""Shared fixtures for the seeded chaos suite.

Every test in this package may install a process-wide
:class:`repro.faults.FaultPlan`; the autouse fixture guarantees no plan
(and no ``REPRO_FAULT_PLAN`` variable) leaks into the next test — or into
the rest of the test run, whose hot paths must stay injection-free.
"""

import stat
import sys

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    yield
    faults.clear()


@pytest.fixture()
def pipe_stub(tmp_path):
    """An executable stub speaking interactive SMT-LIB (echo/check/model).

    Mirrors the pipe-backend test stub: answers every ``(check-sat)``
    with ``sat`` and serves a fixed model, which is enough to exercise
    the restart-and-replay machinery when fault injection kills it.
    """

    def build(name="chaos-pipe-solver", verdicts="sat"):
        script = tmp_path / name
        script.write_text(
            f"#!{sys.executable}\n"
            "import sys\n"
            f"verdicts = {verdicts!r}.split(',')\n"
            "checks = 0\n"
            "for line in sys.stdin:\n"
            "    line = line.strip()\n"
            "    if line.startswith('(echo'):\n"
            "        print(line.split('\"')[1]); sys.stdout.flush()\n"
            "    elif line == '(check-sat)':\n"
            "        print(verdicts[min(checks, len(verdicts) - 1)])\n"
            "        sys.stdout.flush()\n"
            "        checks += 1\n"
            "    elif line == '(get-model)':\n"
            "        print('( (define-fun x () Int 4) )'); sys.stdout.flush()\n"
            "    elif line == '(exit)':\n"
            "        break\n"
        )
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        return str(script)

    return build
