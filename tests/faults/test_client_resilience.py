"""Client-side resilience: reconnect + backoff retries for idempotent
methods, and protocol-frame corruption surfacing as errors — never hangs.

The peer here is a scripted fake daemon, not a real service: each test
declares exactly the byte-level behaviour of every accepted connection
(truncate a frame, send junk, vanish mid-frame, answer properly), so the
client's recovery path is exercised deterministically.
"""

import json
import socket
import threading

import pytest

from repro import faults
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.utils.errors import ServiceError, ServiceProtocolError

#: A minimal valid verify response payload (payload_to_result only needs
#: the verdict; everything else defaults).
_OK_RESULT = {"result": {"verdict": "safe"}}


def _respond_ok(conn, line):
    request = json.loads(line)
    frame = json.dumps(
        {"jsonrpc": "2.0", "id": request["id"], "result": _OK_RESULT}
    ).encode("utf-8")
    conn.sendall(frame + b"\n")


def _respond_junk(conn, line):
    conn.sendall(b"\xa5\xa5 this is not json \xa5\xa5\n")


def _respond_truncated(conn, line):
    conn.sendall(b'{"jsonrpc": "2.0", "id": 1, "resu')  # then close


def _respond_oversized(conn, line):
    conn.sendall(b"x" * (protocol.MAX_FRAME_BYTES + 64) + b"\n")


def _respond_nothing(conn, line):
    pass  # close without answering


def _respond_wrong_id(conn, line):
    conn.sendall(b'{"jsonrpc": "2.0", "id": 99999, "result": {}}\n')


def _respond_parse_error(conn, line):
    request = json.loads(line)
    frame = json.dumps(
        protocol.make_error(None, protocol.PARSE_ERROR, "frame is not valid JSON")
    ).encode("utf-8")
    conn.sendall(frame + b"\n")


class _FakeDaemon:
    """One scripted behaviour per accepted connection, in order."""

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self.behaviors:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            behavior = self.behaviors.pop(0)
            try:
                line = conn.makefile("rb").readline()
                behavior(conn, line)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        self._sock.close()

    def close(self):
        self.behaviors = []
        try:
            self._sock.close()
        except OSError:
            pass

    def client(self, **kwargs):
        kwargs.setdefault("backoff_s", 0.001)
        return ServiceClient(f"127.0.0.1:{self.port}", timeout=5.0, **kwargs)


class TestFrameCorruption:
    """Satellite: corrupted response frames raise, promptly, with retries=0."""

    @pytest.mark.parametrize(
        "behavior, expected",
        [
            (_respond_junk, ServiceProtocolError),
            (_respond_truncated, ServiceProtocolError),
            (_respond_oversized, ServiceProtocolError),
            (_respond_wrong_id, ServiceProtocolError),
            (_respond_nothing, ServiceError),
        ],
    )
    def test_corruption_raises_not_hangs(self, behavior, expected):
        daemon = _FakeDaemon([behavior])
        try:
            client = daemon.client(retries=0)
            with pytest.raises(expected):
                client.verify("figure1")
            client.close()
        finally:
            daemon.close()


class TestRetries:
    def test_transient_junk_is_retried_to_success(self):
        daemon = _FakeDaemon([_respond_junk, _respond_ok])
        try:
            client = daemon.client(retries=2)
            result = client.verify("figure1")
            assert result.verdict.value == "safe"
            assert client.retried_calls == 1
            assert client.reconnects == 1
            assert daemon.connections == 2
            client.close()
        finally:
            daemon.close()

    def test_dropped_connection_is_retried(self):
        daemon = _FakeDaemon([_respond_nothing, _respond_truncated, _respond_ok])
        try:
            client = daemon.client(retries=2)
            assert client.verify("figure1").verdict.value == "safe"
            assert client.retried_calls == 2
        finally:
            daemon.close()

    def test_parse_error_response_is_retried(self):
        # A garbled *request* draws PARSE_ERROR from the server; the
        # client resends instead of failing the (idempotent) query.
        daemon = _FakeDaemon([_respond_parse_error, _respond_ok])
        try:
            client = daemon.client(retries=1)
            assert client.verify("figure1").verdict.value == "safe"
            assert client.retried_calls == 1
        finally:
            daemon.close()

    def test_retry_budget_is_finite(self):
        daemon = _FakeDaemon([_respond_junk] * 3)
        try:
            client = daemon.client(retries=2)
            with pytest.raises(ServiceProtocolError):
                client.verify("figure1")
            assert client.retried_calls == 2  # budget, not forever
        finally:
            daemon.close()

    def test_shutdown_is_never_retried(self):
        daemon = _FakeDaemon([_respond_nothing, _respond_ok])
        try:
            client = daemon.client(retries=5)
            with pytest.raises(ServiceError):
                client.shutdown()
            assert client.retried_calls == 0
            assert daemon.connections == 1  # the second behaviour never ran
        finally:
            daemon.close()

    def test_semantic_errors_are_not_retried(self):
        def bad_params(conn, line):
            request = json.loads(line)
            frame = json.dumps(
                protocol.make_error(
                    request["id"], protocol.INVALID_PARAMS, "unknown workload"
                )
            ).encode("utf-8")
            conn.sendall(frame + b"\n")

        daemon = _FakeDaemon([bad_params, _respond_ok])
        try:
            client = daemon.client(retries=3)
            with pytest.raises(ServiceError):
                client.verify("figure1")
            assert client.retried_calls == 0
        finally:
            daemon.close()

    def test_injected_decode_garble_is_retried(self):
        # End to end through the injection harness: the first response
        # frame is garbled at the client's protocol.decode site, rejected,
        # and the resent query answers cleanly.
        daemon = _FakeDaemon([_respond_ok, _respond_ok])
        try:
            client = daemon.client(retries=1)
            faults.install("protocol.decode:garble:max=1")
            assert client.verify("figure1").verdict.value == "safe"
            assert client.retried_calls == 1
            assert faults.ACTIVE.counters() == {"protocol.decode:garble": 1}
        finally:
            daemon.close()

    def test_unavailable_marker_on_refused_connection(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(f"127.0.0.1:{port}", timeout=1.0)
        assert getattr(excinfo.value, "unavailable", False)
