"""ParallelVerifier resilience: a dead worker process fails its whole
wave (BrokenProcessPool cannot assign blame), so crashed tasks are
re-sharded into isolated single-worker pools — the innocent majority
completes with correct verdicts and only a genuinely poisonous task is
answered UNKNOWN(worker_crash)."""

import pytest

from repro import faults
from repro.verification import ParallelVerifier, Verdict
from repro.workloads import figure1_program, pipeline, racy_fanin, scatter_gather


def _distinct_batch():
    """Six fingerprint-distinct programs with known verdicts."""
    programs = [
        figure1_program(assert_a_is_y=True),
        pipeline(2),
        pipeline(3),
        pipeline(4),
        racy_fanin(2, assert_first_from_sender0=True),
        scatter_gather(2),
    ]
    expected = [
        Verdict.VIOLATION,
        Verdict.SAFE,
        Verdict.SAFE,
        Verdict.SAFE,
        Verdict.VIOLATION,
        Verdict.SAFE,
    ]
    return programs, expected


class TestWaveRecovery:
    def test_crashed_wave_is_resharded_to_correct_verdicts(self):
        # Each pool worker exits on its second task; the isolated retry
        # pools are fresh processes (fault counters restart at zero), so
        # every re-sharded task succeeds on its first and only request.
        faults.install("parallel.task:exit:after=1,max=1")
        programs, expected = _distinct_batch()
        verifier = ParallelVerifier(jobs=2)
        results = verifier.verify_many(programs)
        assert [r.verdict for r in results] == expected
        assert verifier.resilience["worker_crashes"] >= 1
        assert verifier.resilience["retried_tasks"] >= 1
        assert verifier.resilience["crash_unknowns"] == 0

    def test_poison_task_gets_unknown_others_correct(self):
        # Task at position 2 kills every process that touches it — the
        # shared wave and then its isolated retry.  It alone answers
        # UNKNOWN(worker_crash); nobody else is harmed and no verdict is
        # ever wrong.
        faults.install("parallel.task:exit:match=2,max=0")
        programs, expected = _distinct_batch()
        verifier = ParallelVerifier(jobs=2)
        results = verifier.verify_many(programs)
        assert len(results) == len(expected)
        for index, (result, clean) in enumerate(zip(results, expected)):
            if index == 2:
                assert result.verdict is Verdict.UNKNOWN
                assert result.unknown_reason == "worker_crash"
            else:
                assert result.verdict is clean
        assert verifier.resilience["crash_unknowns"] == 1
        assert verifier.resilience["retried_tasks"] >= 1


class TestSerialLane:
    def test_inline_crash_becomes_honest_unknown(self):
        # jobs=1 solves in the calling process, where a hard exit would
        # take the caller down: the injection surfaces as FaultInjected
        # and the serial lane converts it to UNKNOWN(worker_crash).
        faults.install("parallel.task:crash:max=1")
        programs, expected = _distinct_batch()
        verifier = ParallelVerifier(jobs=1)
        results = verifier.verify_many(programs)
        unknowns = [r for r in results if r.verdict is Verdict.UNKNOWN]
        assert len(unknowns) == 1
        assert unknowns[0].unknown_reason == "worker_crash"
        assert verifier.resilience["crash_unknowns"] == 1
        for result, clean in zip(results, expected):
            if result.verdict is not Verdict.UNKNOWN:
                assert result.verdict is clean
