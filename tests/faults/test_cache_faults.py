"""Crash-mid-store hardening for the disk result cache.

Two torn states, both injected at the exact boundary they model:

* the entry write itself fails (``cache.write.entry``) — the disk layer
  is best effort, so ``store`` still succeeds and a later clean store
  persists normally;
* the process dies *between* the entry write and the ``_index.json``
  update (``cache.write.index``) — the scan-rebuild path must adopt the
  orphaned entry instead of quarantining a perfectly valid file.
"""

import json
import os

import pytest

from repro import faults
from repro.program.interpreter import run_program
from repro.verification.cache import CacheKey, ResultCache
from repro.verification.result import Verdict, VerificationResult
from repro.workloads import pipeline


@pytest.fixture(scope="module")
def trace():
    return run_program(pipeline(2), seed=0).trace


def _key(tag: str) -> CacheKey:
    return CacheKey(
        fingerprint=f"fp-{tag}", properties="p", options="o", backend="dpllt"
    )


def _result(trace) -> VerificationResult:
    return VerificationResult(verdict=Verdict.SAFE, trace=trace, backend="dpllt")


def _entry_files(directory):
    return sorted(
        name
        for name in os.listdir(directory)
        if name.endswith(".json") and not name.startswith("_")
    )


class TestEntryWriteFailure:
    def test_failed_persist_never_fails_the_store(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        faults.install("cache.write.entry:crash:max=1")
        assert cache.store(_key("a"), _result(trace)) is True
        assert cache.statistics()["store_failures"] == 1
        assert _entry_files(directory) == []
        # The memory layer still answers this process...
        assert cache.lookup(_key("a"), trace) is not None
        # ...but a fresh process sees a clean miss, not a torn entry.
        fresh = ResultCache(directory=directory)
        assert fresh.lookup(_key("a"), trace) is None
        # With the fault exhausted, re-storing persists for everyone.
        assert cache.store(_key("a"), _result(trace)) is True
        assert len(_entry_files(directory)) == 1
        assert ResultCache(directory=directory).lookup(_key("a"), trace) is not None


class TestIndexWriteCrash:
    def test_scan_rebuild_adopts_the_orphan_entry(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory, max_entries=4)
        writer.store(_key("old"), _result(trace))  # a healthy, indexed entry
        faults.install("cache.write.index:crash:max=1")
        writer.store(_key("torn"), _result(trace))
        # The torn state: both entry files on disk, the index knowing
        # only about the first.
        assert len(_entry_files(directory)) == 2
        with open(os.path.join(directory, "_index.json")) as handle:
            index = json.load(handle)
        assert _key("torn").digest() not in index["entries"]
        assert _key("old").digest() in index["entries"]
        faults.clear()

        # Recovery: the next instance's directory scan adopts the orphan.
        reader = ResultCache(directory=directory, max_entries=4)
        recovered = reader.lookup(_key("torn"), trace)
        assert recovered is not None
        assert recovered.verdict is Verdict.SAFE
        assert recovered.from_cache is True
        assert reader.lookup(_key("old"), trace) is not None
        assert reader.statistics()["quarantined"] == 0
        # The touch on lookup re-indexed the orphan durably.
        with open(os.path.join(directory, "_index.json")) as handle:
            index = json.load(handle)
        assert _key("torn").digest() in index["entries"]

    def test_orphan_counts_toward_eviction_bounds(self, tmp_path, trace):
        # The rebuilt index must see orphans as first-class entries: when
        # the store later exceeds max_entries, eviction still converges.
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory, max_entries=2)
        faults.install("cache.write.index:crash:max=1")
        writer.store(_key("a"), _result(trace))  # orphaned
        writer.store(_key("b"), _result(trace))
        writer.store(_key("c"), _result(trace))
        fresh = ResultCache(directory=directory, max_entries=2)
        fresh.store(_key("d"), _result(trace))
        assert len(_entry_files(directory)) <= 2
