"""Worker-crash recovery in the pool: re-dispatch-once, poison-query
quarantine, and the generation-guarded respawn (the kill/crash race).

Plans are installed *before* the pool is built so forked workers inherit
them; fault counters are per-process, so a respawned worker restarts its
rule schedule at zero — rules use ``match=<workload>`` to keep stats
broadcasts (tag ``"None"``) off the injection sites.
"""

import threading

import pytest

from repro import faults
from repro.service.pool import POISON_CRASH_LIMIT, WorkerPool
from repro.utils.errors import ServiceError


def _verify(pool, workload, timeout_s=None, **spec):
    return pool.submit(
        dict({"op": "verify", "workload": workload}, **spec), timeout_s=timeout_s
    )


class TestRedispatch:
    def test_crash_before_solve_is_redispatched(self):
        # The second figure1 request kills its worker before solving; the
        # pool respawns and re-sends, and the caller sees only verdicts.
        faults.install("pool.worker.request:exit:match=figure1,after=1,max=1")
        pool = WorkerPool(jobs=1)
        try:
            assert _verify(pool, "figure1")["result"]["verdict"] == "violation"
            response = _verify(pool, "figure1")
            assert response["result"]["verdict"] == "violation"
            assert pool.worker_crashes == 1
            assert pool.redispatches == 1
            stats = pool.statistics()
            assert stats["worker_crashes"] == 1
            assert stats["redispatches"] == 1
        finally:
            pool.close()

    def test_crash_after_solve_before_reply_is_redispatched(self):
        # Death between solving and answering: the result is lost with the
        # worker, and the re-dispatch must solve it again from scratch.
        faults.install("pool.worker.reply:exit:match=figure1,after=1,max=1")
        pool = WorkerPool(jobs=1)
        try:
            assert _verify(pool, "figure1")["result"]["verdict"] == "violation"
            assert _verify(pool, "figure1")["result"]["verdict"] == "violation"
            assert pool.worker_crashes == 1
            assert pool.redispatches == 1
        finally:
            pool.close()


class TestPoisonQuery:
    def test_poison_spec_converges_to_unknown(self):
        # figure1 kills every worker incarnation that touches it.  The
        # ledger lets it burn POISON_CRASH_LIMIT workers, then answers
        # UNKNOWN(worker_crash) without spawning anything.
        faults.install("pool.worker.request:exit:match=figure1,max=0")
        pool = WorkerPool(jobs=1)
        try:
            # Submit 1: crash + redispatch-crash exhausts both attempts.
            with pytest.raises(ServiceError):
                _verify(pool, "figure1")
            assert pool.worker_crashes == 2
            # Submit 2: third crash trips the limit mid-dispatch.
            response = _verify(pool, "figure1")
            assert response["result"]["verdict"] == "unknown"
            assert response["result"]["unknown_reason"] == "worker_crash"
            assert pool.poisoned == 1
            assert pool.worker_crashes == POISON_CRASH_LIMIT
            # Submit 3: quarantined before any worker is risked.
            response = _verify(pool, "figure1")
            assert response["result"]["unknown_reason"] == "worker_crash"
            assert pool.worker_crashes == POISON_CRASH_LIMIT
            # Other specs on the same (respawned) worker are unharmed.
            healthy = _verify(pool, "pipeline", params={"senders": 3})
            assert healthy["result"]["verdict"] == "safe"
        finally:
            pool.close()

    def test_poison_ledger_is_per_spec(self):
        pool = WorkerPool(jobs=1)
        try:
            key_a = pool._spec_key({"workload": "figure1"})
            key_b = pool._spec_key({"workload": "figure1", "seed": 1})
            assert key_a != key_b
            assert key_a == pool._spec_key({"workload": "figure1", "seed": 0})
        finally:
            pool.close()


class TestRespawnSerialization:
    """Satellite: the hard-kill respawn must not race a crash respawn."""

    def test_stale_generation_respawn_is_noop(self):
        pool = WorkerPool(jobs=1)
        try:
            worker = pool._workers[0]
            with worker.lock:
                worker._respawn()  # unconditional: replaces the process
                generation = worker.generation
                pid = worker.process.pid
                worker._respawn(generation - 1)  # stale observer: no-op
                assert worker.process.pid == pid
                assert worker.generation == generation
                worker._respawn(generation)  # current observer: respawns
                assert worker.process.pid != pid
                assert worker.generation == generation + 1
        finally:
            pool.close()

    def test_hung_request_is_killed_without_harming_neighbors(self):
        # Thread A's figure1 hangs in the worker and is hard-killed at
        # 1.5x its deadline; thread B's pipeline query, queued behind the
        # same worker's lock, must land on the respawned process and get
        # its real verdict — not a crash, not a stale timeout.
        faults.install("pool.worker.request:hang:match=figure1,delay=5.0,max=0")
        pool = WorkerPool(jobs=1)
        results = {}
        try:
            def hang_victim():
                results["a"] = _verify(pool, "figure1", timeout_s=0.05)

            def healthy():
                results["b"] = _verify(pool, "pipeline", params={"senders": 2})

            thread_a = threading.Thread(target=hang_victim)
            thread_b = threading.Thread(target=healthy)
            thread_a.start()
            thread_b.start()
            thread_a.join(timeout=30)
            thread_b.join(timeout=30)
            assert results["a"]["result"]["verdict"] == "unknown"
            assert results["a"]["result"]["unknown_reason"] == "timeout"
            assert results["b"]["result"]["verdict"] == "safe"
            worker = pool._workers[0]
            assert worker.kills == 1
            assert worker.process.is_alive()
        finally:
            pool.close()
