"""The end-to-end chaos invariant (the PR's acceptance gate).

A 64-query mixed stream (8 distinct questions × 8 recording seeds, two of
them on a piped external solver) runs twice against a live TCP daemon:
once clean, once under a seeded plan injecting four distinct fault types —
worker crashes, pipe-solver kills, cache write failures and frame garbling.

Invariant: every chaos answer is the clean run's verdict or an honest
``UNKNOWN`` — never a wrong verdict, never a hung client, never a dead
daemon — and the statistics prove each fault type actually fired and was
recovered from.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro import faults
from repro.service.client import ServiceClient
from repro.service.server import VerificationService
from repro.utils.errors import ServiceError

DISTINCT_SPECS = [
    {"workload": "figure1"},
    {"workload": "racy_fanin", "params": {"senders": 2}},
    {"workload": "racy_fanin", "params": {"senders": 3}},
    {"workload": "racy_fanin", "params": {"senders": 4}},
    {"workload": "pipeline", "params": {"senders": 6}},
    {"workload": "scatter_gather", "params": {"senders": 3}},
    {"workload": "client_server", "params": {"senders": 3}},
    {"workload": "token_ring", "params": {"senders": 4}},
]
SEEDS = range(8)

#: Chaos plan: four fault types at once.  The worker-crash rule matches
#: only racy_fanin queries so a stats broadcast (tag ``"None"``) never
#: lands on the injection site; counters are per-process, so every worker
#: incarnation dies on its third racy_fanin request and the re-dispatch
#: (a fresh fork, counters at zero) always completes.  The cache rule is
#: deterministic (first two stores of every incarnation fail) because a
#: probabilistic rule might never fire inside short-lived incarnations.
CHAOS_PLAN = (
    "seed=1117;"
    "pool.worker.request:exit:match=racy_fanin,after=2,max=2;"
    "pipe.check:crash:max=0;"
    "cache.write.entry:crash:max=2;"
    "protocol.decode:garble:after=3,max=2"
)


def _queries(pipe_solver_available):
    queries = []
    for seed in SEEDS:
        for spec in DISTINCT_SPECS:
            query = dict(spec, seed=seed)
            if (
                pipe_solver_available
                and seed == 0
                and spec["workload"] in ("pipeline", "token_ring")
            ):
                # Two queries ride the external piped solver; both are
                # genuinely safe, so the clean stub ("unsat") and the
                # chaos-time dpllt fallback agree on the verdict.
                query["backend"] = "smtlib-pipe"
            queries.append(query)
    return queries


class _Daemon:
    """A live TCP daemon on an OS-assigned port, on a background thread."""

    def __init__(self, **kwargs):
        self.service = VerificationService(**kwargs)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        self.port = probe.getsockname()[1]
        probe.close()
        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                self.service.serve_forever("127.0.0.1", self.port)
            ),
            daemon=True,
        )
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", self.port), 0.2).close()
                return
            except OSError:
                time.sleep(0.05)
        raise RuntimeError("daemon did not come up")

    def stop(self):
        if self.thread.is_alive():
            try:
                with ServiceClient(f"127.0.0.1:{self.port}") as client:
                    client.shutdown()
            except ServiceError:
                pass
        self.thread.join(timeout=10.0)


def _run_stream(daemon, queries):
    verdicts = []
    with ServiceClient(f"127.0.0.1:{daemon.port}", backoff_s=0.01) as client:
        for query in queries:
            verdicts.append(client.verify(**_to_kwargs(query)).verdict.value)
        stats = client.stats()
        retried = client.retried_calls
    return verdicts, stats, retried


def _to_kwargs(query):
    kwargs = dict(query)
    kwargs["workload"] = kwargs.pop("workload")
    return kwargs


def test_chaos_batch_matches_clean_run(tmp_path, pipe_stub, monkeypatch):
    monkeypatch.setenv("REPRO_SMT_SOLVER", pipe_stub(verdicts="unsat"))
    queries = _queries(pipe_solver_available=True)
    assert len(queries) == 64
    assert sum(1 for q in queries if q.get("backend") == "smtlib-pipe") == 2

    # -- clean pass: the ground truth -------------------------------------
    faults.clear()
    daemon = _Daemon(jobs=2, cache_dir=str(tmp_path / "clean-cache"))
    try:
        clean, clean_stats, _ = _run_stream(daemon, queries)
    finally:
        daemon.stop()
    assert clean_stats["worker_crashes"] == 0
    assert clean_stats["degradations"] == []

    # -- chaos pass: same stream, seeded fault plan ------------------------
    # Installed *before* the daemon so forked workers inherit the plan.
    faults.install(CHAOS_PLAN)
    daemon = _Daemon(jobs=2, cache_dir=str(tmp_path / "chaos-cache"))
    try:
        chaos, stats, retried = _run_stream(daemon, queries)

        # The invariant: correct verdict or honest UNKNOWN, never wrong.
        assert len(chaos) == len(clean)
        for clean_verdict, chaos_verdict in zip(clean, chaos):
            assert chaos_verdict in (clean_verdict, "unknown")
        # Recovery is the common case: the stream stays conclusive.
        unknowns = sum(1 for v in chaos if v == "unknown")
        assert unknowns <= len(chaos) // 4

        # Each of the four fault types demonstrably fired and was survived:
        assert stats["worker_crashes"] >= 1  # pool.worker.request:exit
        assert stats["redispatches"] >= 1
        backend_events = [
            e for e in stats["degradations"] if e["layer"] == "backend"
        ]
        assert backend_events, "pipe.check:crash produced no backend ladder"
        assert all(e["to"] == "dpllt" for e in backend_events)
        assert stats["cache"]["store_failures"] >= 1  # cache.write.entry
        assert retried >= 1  # protocol.decode:garble forced client resends
        assert stats["faults"].get("protocol.decode:garble", 0) >= 1

        # The daemon survived everything: it still answers, on a fresh
        # connection, with a correct verdict.
        with ServiceClient(f"127.0.0.1:{daemon.port}") as client:
            assert client.verify("figure1").verdict.value == clean[0]
        assert daemon.thread.is_alive()
    finally:
        daemon.stop()
