"""Tests for trace events, the trace container and the trace builder."""

import json

import pytest

from repro.mcapi.endpoint import EndpointId
from repro.program import run_program
from repro.smt.terms import IntVal, IntVar, Lt
from repro.trace import ExecutionTrace, SendEvent, TraceBuilder
from repro.utils.errors import TraceError
from repro.workloads import figure1_program, nonblocking_fanin


EP0 = EndpointId(0, 0)
EP1 = EndpointId(1, 0)


def _small_trace():
    builder = TraceBuilder("unit")
    builder.send("t1", EP1, EP0, 5, payload_expr=IntVal(5))
    builder.receive("t0", EP0, target_variable="x", observed_value=5, observed_send_id=0)
    builder.branch("t0", Lt(IntVar("recv_val_0"), IntVal(10)), True)
    builder.assertion("t0", Lt(IntVar("recv_val_0"), IntVal(100)), True, label="small")
    return builder.build()


class TestTraceBuilder:
    def test_event_numbering(self):
        trace = _small_trace()
        assert [e.event_id for e in trace.events] == [0, 1, 2, 3]
        assert trace[0].thread_index == 0
        assert trace[1].thread_index == 0  # first event of t0
        assert trace[2].thread_index == 1

    def test_send_and_recv_ids_are_dense(self):
        builder = TraceBuilder()
        builder.send("a", EP0, EP1, 1, payload_expr=IntVal(1))
        builder.send("a", EP0, EP1, 2, payload_expr=IntVal(2))
        builder.receive("b", EP1)
        builder.receive("b", EP1)
        trace = builder.build()
        assert [s.send_id for s in trace.sends()] == [0, 1]
        assert [r.recv_id for r in trace.receive_operations()] == [0, 1]

    def test_value_symbols_are_unique(self):
        trace = _small_trace()
        ops = trace.receive_operations()
        assert ops[0].value_symbol == "recv_val_0"

    def test_nonblocking_requires_wait_for_validation(self):
        builder = TraceBuilder()
        builder.receive_init("t0", EP0, target_variable="x")
        with pytest.raises(TraceError):
            builder.build()
        builder.wait("t0", recv_id=0)
        trace = builder.build()
        (op,) = trace.receive_operations()
        assert not op.blocking
        assert op.completion_event_id != op.issue_event_id


class TestExecutionTrace:
    def test_event_id_must_match_position(self):
        trace = ExecutionTrace()
        with pytest.raises(TraceError):
            trace.append(SendEvent(event_id=5, thread="a", thread_index=0))

    def test_threads_and_program_order(self):
        trace = _small_trace()
        assert trace.threads() == ["t1", "t0"]
        pairs = trace.program_order_pairs()
        assert (1, 2) in pairs and (2, 3) in pairs
        assert all(a < len(trace) and b < len(trace) for a, b in pairs)

    def test_typed_views(self):
        trace = _small_trace()
        assert len(trace.sends()) == 1
        assert len(trace.receive_events()) == 1
        assert len(trace.branches()) == 1
        assert len(trace.assertions()) == 1
        assert trace.send_by_id(0).payload_value == 5
        with pytest.raises(TraceError):
            trace.send_by_id(9)

    def test_endpoints_listed(self):
        trace = _small_trace()
        assert set(trace.endpoints()) == {EP0, EP1}

    def test_summary_and_pretty(self):
        trace = _small_trace()
        summary = trace.summary()
        assert summary["sends"] == 1 and summary["receives"] == 1
        text = trace.pretty()
        assert "SendEvent" in text and "ReceiveEvent" in text

    def test_json_serialisation(self):
        trace = _small_trace()
        data = json.loads(trace.to_json())
        assert data["name"] == "unit"
        kinds = [event["kind"] for event in data["events"]]
        assert kinds == ["SendEvent", "ReceiveEvent", "BranchEvent", "AssertEvent"]
        # every event has the base fields
        for event in data["events"]:
            assert {"event_id", "thread", "thread_index"} <= set(event)

    def test_validation_rejects_duplicate_symbols(self):
        builder = TraceBuilder()
        event = builder.receive("t0", EP0)
        # Manually corrupt: append another receive with the same symbol.
        from repro.trace.events import ReceiveEvent

        bad = ReceiveEvent(
            event_id=1,
            thread="t0",
            thread_index=1,
            recv_id=1,
            endpoint=EP0,
            value_symbol=event.value_symbol,
        )
        builder.trace.append(bad)
        with pytest.raises(TraceError):
            builder.trace.validate()


class TestInterpreterTraces:
    def test_figure1_trace_shape(self):
        run = run_program(figure1_program(), seed=0)
        trace = run.trace
        summary = trace.summary()
        assert summary["threads"] == 3
        assert summary["sends"] == 3
        assert summary["receives"] == 3
        trace.validate()
        # Every receive observed one of the sends to its endpoint.
        sends_by_id = {s.send_id: s for s in trace.sends()}
        for op in trace.receive_operations():
            assert op.observed_send_id in sends_by_id
            assert sends_by_id[op.observed_send_id].destination == op.endpoint

    def test_nonblocking_trace_has_waits(self):
        run = run_program(nonblocking_fanin(2), seed=1)
        trace = run.trace
        assert len(trace.receive_init_events()) == 2
        assert len(trace.wait_events()) == 2
        ops = trace.receive_operations()
        assert all(not op.blocking for op in ops)
        for op in ops:
            assert op.completion_event_id > op.issue_event_id

    def test_traces_are_deterministic_per_seed(self):
        a = run_program(figure1_program(), seed=5).trace
        b = run_program(figure1_program(), seed=5).trace
        assert a.to_json() == b.to_json()
