"""Tests for the canonical trace fingerprint: the stability guarantees its
docstring promises, and the non-guarantees (semantic changes must change it)."""

import random

import pytest

from repro.program import ProgramBuilder, run_program
from repro.program.ast import C, V
from repro.trace import canonical_form, trace_fingerprint
from repro.workloads import (
    branching_consumer,
    figure1_program,
    nonblocking_fanin,
    racy_fanin,
    random_program,
    scatter_gather,
)

HEX_DIGEST_LENGTH = 64


def _trace(program, seed=0):
    return run_program(program, seed=seed).trace


class TestStability:
    def test_deterministic_across_calls(self):
        trace = _trace(figure1_program(assert_a_is_y=True))
        assert trace_fingerprint(trace) == trace_fingerprint(trace)
        assert len(trace_fingerprint(trace)) == HEX_DIGEST_LENGTH

    def test_interleaving_independent(self):
        """Recordings under different seeds reorder events globally and
        renumber every send/recv/symbol — the fingerprint must not move."""
        for program in (
            racy_fanin(3),
            nonblocking_fanin(2),
            scatter_gather(2, assert_order=True),
        ):
            digests = {trace_fingerprint(_trace(program, seed=s)) for s in range(5)}
            assert len(digests) == 1, program.name

    def test_identical_rerecording_matches(self):
        program = figure1_program(assert_a_is_y=True)
        assert trace_fingerprint(_trace(program)) == trace_fingerprint(_trace(program))

    def test_random_programs_interleaving_independent(self):
        rng = random.Random(7)
        for index in range(10):
            program = random_program(rng, name=f"fp{index}")
            digests = {
                trace_fingerprint(_trace(program, seed=s)) for s in range(3)
            }
            assert len(digests) == 1, program.name


class TestSensitivity:
    def test_different_programs_differ(self):
        digests = {
            trace_fingerprint(_trace(program))
            for program in (
                figure1_program(),
                figure1_program(assert_a_is_y=True),
                racy_fanin(2),
                racy_fanin(3),
                scatter_gather(2),
            )
        }
        assert len(digests) == 5

    def test_payload_change_differs(self):
        def build(payload):
            builder = ProgramBuilder("payload")
            builder.thread("r").recv("x")
            builder.thread("s").send("r", C(payload))
            return builder.build()

        assert trace_fingerprint(_trace(build(1))) != trace_fingerprint(
            _trace(build(2))
        )

    def test_assertion_condition_included(self):
        def build(expected):
            builder = ProgramBuilder("asserted")
            receiver = builder.thread("r")
            receiver.recv("x")
            receiver.assertion(V("x").eq(C(expected)), label="same-label")
            builder.thread("s").send("r", C(5))
            return builder.build()

        assert trace_fingerprint(_trace(build(5))) != trace_fingerprint(
            _trace(build(6))
        )

    def test_branch_outcome_included(self):
        """The analysis is path-constrained: a recording that took the other
        branch is a different verification question."""
        program = branching_consumer(threshold=150)
        digests = set()
        for seed in range(8):
            run = run_program(program, seed=seed)
            outcomes = tuple(event.outcome for event in run.trace.branches())
            digests.add((outcomes, trace_fingerprint(run.trace)))
        by_outcome = {}
        for outcomes, digest in digests:
            by_outcome.setdefault(outcomes, set()).add(digest)
        for outcomes, fingerprint_set in by_outcome.items():
            assert len(fingerprint_set) == 1
        if len(by_outcome) > 1:
            all_digests = {d for _, d in digests}
            assert len(all_digests) == len(by_outcome)

    def test_blocking_mode_included(self):
        blocking = ProgramBuilder("mode")
        blocking.thread("r").recv("x")
        blocking.thread("s").send("r", C(1))
        nonblocking = ProgramBuilder("mode")
        nonblocking.thread("r").recv_i("x", handle="h").wait("h")
        nonblocking.thread("s").send("r", C(1))
        assert trace_fingerprint(_trace(blocking.build())) != trace_fingerprint(
            _trace(nonblocking.build())
        )

    def test_observed_values_excluded(self):
        """Observed matchings/values are reporting artefacts: recordings of
        the same racy program observing different winners hash the same
        (covered by interleaving independence), and the canonical form
        never mentions the concrete observations."""
        trace = _trace(racy_fanin(3))
        rendering = repr(canonical_form(trace))
        assert "observed" not in rendering
        recv_rows = [
            row
            for rows in canonical_form(trace)
            for row in rows
            if row[0] == "recv"
        ]
        # A recv row names the endpoint and canonical symbol, nothing else.
        assert all(len(row) == 3 for row in recv_rows)


class TestCanonicalForm:
    def test_threads_sorted_and_complete(self):
        trace = _trace(figure1_program())
        form = canonical_form(trace)
        names = [rows[0][1] for rows in form]
        assert names == sorted(names)
        assert sum(len(rows) - 1 for rows in form) == len(trace)
