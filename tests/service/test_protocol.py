"""Tests for the service wire protocol: framing, envelope validation and
the result payload round trip."""

import json

import pytest

from repro.encoding.witness import Witness
from repro.service import protocol
from repro.utils.errors import ServiceProtocolError
from repro.verification.result import Verdict, VerificationResult


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"jsonrpc": "2.0", "id": 7, "method": "stats", "params": {}}
        frame = protocol.encode_frame(message)
        assert frame.endswith(b"\n")
        assert b"\n" not in frame[:-1]
        assert protocol.decode_frame(frame) == message

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ServiceProtocolError):
            protocol.decode_frame(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServiceProtocolError):
            protocol.decode_frame(b"[1, 2, 3]\n")
        with pytest.raises(ServiceProtocolError):
            protocol.decode_frame(b'"hello"\n')

    def test_decode_rejects_invalid_utf8(self):
        with pytest.raises(ServiceProtocolError):
            protocol.decode_frame(b"\xff\xfe{}\n")

    def test_oversized_frames_rejected_both_ways(self):
        huge = {"jsonrpc": "2.0", "method": "x", "params": {"pad": "y" * (1 << 20)}}
        with pytest.raises(ServiceProtocolError):
            protocol.encode_frame(huge)
        with pytest.raises(ServiceProtocolError):
            protocol.decode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))


class TestRequestValidation:
    def test_valid_request(self):
        request = protocol.make_request("verify", {"workload": "figure1"}, 3)
        request_id, method, params = protocol.validate_request(request)
        assert (request_id, method) == (3, "verify")
        assert params == {"workload": "figure1"}

    def test_missing_params_defaults_empty(self):
        request = protocol.make_request("stats", None, 1)
        _, _, params = protocol.validate_request(request)
        assert params == {}

    @pytest.mark.parametrize(
        "message",
        [
            {"method": "verify"},  # no jsonrpc tag
            {"jsonrpc": "1.0", "method": "verify"},  # wrong version
            {"jsonrpc": "2.0"},  # no method
            {"jsonrpc": "2.0", "method": ""},  # empty method
            {"jsonrpc": "2.0", "method": 42},  # non-string method
            {"jsonrpc": "2.0", "method": "verify", "params": [1]},  # list params
        ],
    )
    def test_malformed_requests_rejected(self, message):
        with pytest.raises(ServiceProtocolError):
            protocol.validate_request(message)

    def test_error_codes_are_jsonrpc_standard(self):
        assert protocol.PARSE_ERROR == -32700
        assert protocol.INVALID_REQUEST == -32600
        assert protocol.METHOD_NOT_FOUND == -32601
        assert protocol.INVALID_PARAMS == -32602
        assert protocol.INTERNAL_ERROR == -32603


class TestResultPayload:
    def test_violation_with_witness_round_trip(self):
        result = VerificationResult(
            verdict=Verdict.VIOLATION,
            witness=Witness(
                matching={0: 2, 1: 1},
                receive_values={0: 7, 1: 3},
                unmatched_receives=[5],
                orphan_sends=[4],
            ),
            solver_statistics={"iterations": 12, "skipme": object()},
            encode_seconds=0.25,
            solve_seconds=1.5,
            backend="dpllt",
        )
        payload = protocol.result_to_payload(result)
        assert json.loads(json.dumps(payload)) == payload  # JSON-serialisable
        assert "skipme" not in payload["solver_statistics"]
        rebuilt = protocol.payload_to_result(payload)
        assert rebuilt.verdict is Verdict.VIOLATION
        assert rebuilt.witness.matching == {0: 2, 1: 1}
        assert rebuilt.witness.receive_values == {0: 7, 1: 3}
        assert rebuilt.witness.unmatched_receives == [5]
        assert rebuilt.witness.orphan_sends == [4]
        assert rebuilt.solver_statistics["iterations"] == 12
        assert rebuilt.backend == "dpllt"
        assert rebuilt.solve_seconds == 1.5

    def test_timeout_unknown_round_trip(self):
        result = VerificationResult(
            verdict=Verdict.UNKNOWN, unknown_reason="timeout", backend="dpllt"
        )
        rebuilt = protocol.payload_to_result(protocol.result_to_payload(result))
        assert rebuilt.verdict is Verdict.UNKNOWN
        assert rebuilt.unknown_reason == "timeout"
        assert rebuilt.timed_out

    def test_safe_without_witness_round_trip(self):
        result = VerificationResult(verdict=Verdict.SAFE, from_cache=True)
        rebuilt = protocol.payload_to_result(protocol.result_to_payload(result))
        assert rebuilt.verdict is Verdict.SAFE
        assert rebuilt.witness is None
        assert rebuilt.from_cache
