"""Tests for the verification service: dispatch, the warm session pool,
the shared result cache, concurrent TCP clients and daemon shutdown."""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient, parse_address
from repro.service.pool import SessionPool, WorkerPool
from repro.service.server import VerificationService, run_stdio
from repro.utils.errors import ServiceError
from repro.verification.result import Verdict


def _request(method, params=None, request_id=1):
    return protocol.make_request(method, params, request_id)


@pytest.fixture()
def service():
    svc = VerificationService(jobs=0)
    yield svc
    svc.close()


class TestDispatch:
    """handle_json drives the full pipeline without any sockets."""

    def test_verify_violation_with_witness(self, service):
        response = service.handle_json(
            _request("verify", {"workload": "figure1"})
        )
        result = response["result"]["result"]
        assert result["verdict"] == "violation"
        assert result["witness"]["matching"]
        assert response["result"]["pool_hit"] is False

    def test_second_verify_hits_warm_pool(self, service):
        service.handle_json(_request("verify", {"workload": "figure1"}))
        response = service.handle_json(
            _request("verify", {"workload": "figure1"}, request_id=2)
        )
        assert response["result"]["pool_hit"] is True

    def test_verify_batch_mixed_verdicts(self, service):
        response = service.handle_json(
            _request(
                "verify_batch",
                {
                    "queries": [
                        {"workload": "figure1"},
                        {"workload": "pipeline", "params": {"senders": 3}},
                    ]
                },
            )
        )
        verdicts = [
            item["result"]["verdict"] for item in response["result"]["results"]
        ]
        assert verdicts == ["violation", "safe"]

    def test_batch_shared_params_apply_to_every_query(self, service):
        response = service.handle_json(
            _request(
                "verify_batch",
                {
                    "workload": "figure1",
                    "queries": [{"seed": 0}, {"seed": 1}],
                },
            )
        )
        assert len(response["result"]["results"]) == 2

    def test_enumerate_matchings(self, service):
        response = service.handle_json(
            _request("enumerate", {"workload": "figure1"})
        )
        matchings = response["result"]["matchings"]
        assert len(matchings) >= 2  # figure1's race admits several schedules

    def test_stats_counters(self, service):
        service.handle_json(_request("verify", {"workload": "figure1"}))
        service.handle_json(_request("verify", {"workload": "figure1"}, request_id=2))
        response = service.handle_json(_request("stats", request_id=3))
        stats = response["result"]
        assert stats["pool"]["misses"] == 1
        assert stats["pool"]["hits"] == 1
        assert stats["requests"] == 3
        assert stats["jobs"] == 0

    def test_shutdown_sets_flag(self, service):
        response = service.handle_json(_request("shutdown"))
        assert response["result"] == {"stopping": True}
        assert service.shutdown_requested

    def test_timeout_param_reports_unknown(self, service):
        response = service.handle_json(
            _request("verify", {"workload": "figure1", "timeout_s": 0.0})
        )
        result = response["result"]["result"]
        assert result["verdict"] == "unknown"
        assert result["unknown_reason"] == "timeout"

    def test_default_timeout_applies_when_query_has_none(self):
        svc = VerificationService(jobs=0, default_timeout_s=0.0)
        try:
            response = svc.handle_json(_request("verify", {"workload": "figure1"}))
            assert response["result"]["result"]["unknown_reason"] == "timeout"
        finally:
            svc.close()


class TestDispatchErrors:
    def test_unknown_method(self, service):
        response = service.handle_json(_request("explode"))
        assert response["error"]["code"] == protocol.METHOD_NOT_FOUND

    def test_missing_jsonrpc_tag(self, service):
        response = service.handle_json({"id": 1, "method": "verify"})
        assert response["error"]["code"] == protocol.INVALID_REQUEST

    def test_unknown_workload(self, service):
        response = service.handle_json(
            _request("verify", {"workload": "not-a-workload"})
        )
        assert response["error"]["code"] == protocol.INVALID_PARAMS

    def test_unknown_workload_param(self, service):
        response = service.handle_json(
            _request("verify", {"workload": "figure1", "params": {"bogus": 1}})
        )
        assert response["error"]["code"] == protocol.INVALID_PARAMS

    def test_empty_batch_rejected(self, service):
        response = service.handle_json(_request("verify_batch", {"queries": []}))
        assert response["error"]["code"] == protocol.INVALID_PARAMS

    def test_error_does_not_kill_later_requests(self, service):
        service.handle_json(_request("verify", {"workload": "nope"}))
        response = service.handle_json(
            _request("verify", {"workload": "figure1"}, request_id=2)
        )
        assert response["result"]["result"]["verdict"] == "violation"


class TestSessionPool:
    def test_lru_eviction_and_stats(self):
        from repro.service.pool import PoolKey

        pool = SessionPool(capacity=2)
        keys = [
            PoolKey(
                fingerprint=f"f{i}",
                options="endpoint;fifo=False",
                backend="dpllt",
                theory_mode="default",
            )
            for i in range(3)
        ]
        for key in keys:
            assert pool.get(key) is None
            pool.put(key, object())
        assert pool.get(keys[0]) is None  # evicted by capacity 2
        assert pool.get(keys[2]) is not None
        stats = pool.statistics()
        assert stats["evictions"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 4

    def test_invalidate_by_fingerprint(self):
        from repro.service.pool import PoolKey

        pool = SessionPool(capacity=8)
        key_a = PoolKey(
            fingerprint="aa", options="o", backend="dpllt", theory_mode="default"
        )
        key_b = PoolKey(
            fingerprint="bb", options="o", backend="dpllt", theory_mode="default"
        )
        pool.put(key_a, object())
        pool.put(key_b, object())
        assert pool.invalidate("aa") == 1
        assert pool.get(key_a) is None
        assert pool.get(key_b) is not None
        assert pool.invalidate() == 1  # drop the rest


class TestSharedCache:
    def test_two_services_share_one_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = VerificationService(jobs=0, cache_dir=cache_dir)
        try:
            response = first.handle_json(_request("verify", {"workload": "figure1"}))
            assert response["result"]["result"]["from_cache"] is False
        finally:
            first.close()
        second = VerificationService(jobs=0, cache_dir=cache_dir)
        try:
            response = second.handle_json(_request("verify", {"workload": "figure1"}))
            assert response["result"]["result"]["from_cache"] is True
        finally:
            second.close()


class _DaemonHarness:
    """A live TCP daemon on an OS-assigned port, run on a background thread."""

    def __init__(self, jobs=0, **kwargs):
        self.service = VerificationService(jobs=jobs, **kwargs)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        self.port = probe.getsockname()[1]
        probe.close()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", self.port), 0.2).close()
                return
            except OSError:
                time.sleep(0.05)
        raise RuntimeError("daemon did not come up")

    def _run(self):
        asyncio.run(self.service.serve_forever("127.0.0.1", self.port))

    def client(self):
        return ServiceClient(f"127.0.0.1:{self.port}")

    def stop(self):
        if self.thread.is_alive():
            try:
                with self.client() as client:
                    client.shutdown()
            except ServiceError:
                pass
        self.thread.join(timeout=10.0)
        assert not self.thread.is_alive(), "daemon failed to stop"


@pytest.fixture()
def daemon():
    harness = _DaemonHarness(jobs=0)
    yield harness
    harness.stop()


class TestTcpDaemon:
    def test_verify_round_trip(self, daemon):
        with daemon.client() as client:
            result = client.verify("figure1")
        assert result.verdict is Verdict.VIOLATION
        assert result.witness is not None

    def test_batch_and_enumerate(self, daemon):
        with daemon.client() as client:
            results = client.verify_batch(
                [{"workload": "figure1"}, {"workload": "pipeline"}]
            )
            matchings = client.enumerate("figure1")
        assert [r.verdict for r in results] == [Verdict.VIOLATION, Verdict.SAFE]
        assert len(matchings) >= 2

    def test_concurrent_clients_share_one_warm_session(self, daemon):
        """Same fingerprint from many clients → one encode, pool hits for
        the rest (the requests serialise on the inline executor lock)."""
        verdicts = {}

        def worker(index):
            with daemon.client() as client:
                verdicts[index] = client.verify("figure1").verdict

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(v is Verdict.VIOLATION for v in verdicts.values())
        with daemon.client() as client:
            stats = client.stats()
        assert stats["pool"]["misses"] == 1  # one encode for four clients
        assert stats["pool"]["hits"] == 3

    def test_malformed_frame_gets_parse_error(self, daemon):
        sock = socket.create_connection(("127.0.0.1", daemon.port), 5.0)
        try:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        finally:
            sock.close()
        assert response["error"]["code"] == protocol.PARSE_ERROR

    def test_unknown_method_error_surfaces_in_client(self, daemon):
        with daemon.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client._call("frobnicate")
        assert str(protocol.METHOD_NOT_FOUND) in str(excinfo.value)

    def test_shutdown_stops_daemon(self, daemon):
        with daemon.client() as client:
            assert client.shutdown() == {"stopping": True}
        daemon.thread.join(timeout=10.0)
        assert not daemon.thread.is_alive()
        with pytest.raises(ServiceError):
            ServiceClient(f"127.0.0.1:{daemon.port}")


class TestStdio:
    def test_stdio_round_trip(self):
        lines = [
            json.dumps(_request("verify", {"workload": "figure1"}, request_id=1)),
            json.dumps(_request("stats", request_id=2)),
            json.dumps(_request("shutdown", request_id=3)),
        ]
        stdout = io.StringIO()
        rc = run_stdio(jobs=0, stdin=io.StringIO("\n".join(lines) + "\n"), stdout=stdout)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert rc == 0
        assert responses[0]["result"]["result"]["verdict"] == "violation"
        assert responses[1]["result"]["requests"] == 2
        assert responses[2]["result"] == {"stopping": True}

    def test_stdio_stops_reading_after_shutdown(self):
        lines = [
            json.dumps(_request("shutdown", request_id=1)),
            json.dumps(_request("verify", {"workload": "figure1"}, request_id=2)),
        ]
        stdout = io.StringIO()
        run_stdio(jobs=0, stdin=io.StringIO("\n".join(lines) + "\n"), stdout=stdout)
        responses = stdout.getvalue().splitlines()
        assert len(responses) == 1  # the post-shutdown verify is never served


class TestParseAddress:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("127.0.0.1:9177", ("127.0.0.1", 9177)),
            (":8000", ("127.0.0.1", 8000)),
            ("8000", ("127.0.0.1", 8000)),
            ("verifier.local", ("verifier.local", 9177)),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_address(text) == expected

    @pytest.mark.parametrize("text", ["", "host:notaport"])
    def test_rejected_forms(self, text):
        with pytest.raises(ServiceError):
            parse_address(text)


class TestWorkerPoolRouting:
    def test_inline_pool_counts_timeouts(self):
        pool = WorkerPool(jobs=0)
        try:
            response = pool.submit(
                {"op": "verify", "workload": "figure1"}, timeout_s=0.0
            )
            assert response["result"]["unknown_reason"] == "timeout"
            assert pool.timeouts == 1
        finally:
            pool.close()

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(jobs=0)
        pool.close()
        with pytest.raises(ServiceError):
            pool.submit({"op": "verify", "workload": "figure1"})
