"""Randomized differential testing of the symbolic engine.

The symbolic verdict is cross-checked against the repo's two ground-truth
oracles — exhaustive explicit-state exploration and the sleep-set (DPOR)
explorer — on a corpus of seeded random send/recv programs, and the parallel
batch path is cross-checked against the serial one.  This is the safety net
under the parallel/caching subsystem: any concurrency or cache-translation
bug that corrupts verdicts shows up here as a disagreement.

Two semantic details make exact agreement possible:

* Programs are **branch-free** (``random_program`` guarantees it), so the
  path-constrained symbolic analysis covers *all* executions, exactly the
  set the explicit explorers enumerate.
* Sessions encode with ``enforce_pair_fifo=True``: the MCAPI runtime the
  oracles execute preserves per-(source, destination) FIFO, while the
  paper's base formula deliberately omits it.  Without the extension the
  symbolic engine (correctly, per the paper's weaker network model) reports
  violations on same-pair reorderings the runtime can never produce.
"""

import random

import pytest

from repro.baselines.dpor import SleepSetExplorer
from repro.baselines.explicit import ExplicitStateExplorer, canonical_matching
from repro.encoding.encoder import EncoderOptions
from repro.program import run_program
from repro.verification import (
    Verdict,
    VerificationSession,
    verify_many,
    verify_many_parallel,
)
from repro.workloads import random_program

#: Differential corpus size (the issue's target).
CORPUS_SIZE = 200
#: Explicit exploration is exponential in trace length; 6 events keeps the
#: whole corpus exhaustively explorable in seconds while still covering
#: fan-in races, non-blocking receives, forwarding chains and every
#: assertion shape the generator draws.
MAX_TRACE_EVENTS = 6
SEED = 20260728

OPTIONS = EncoderOptions(enforce_pair_fifo=True)


def _corpus(count=CORPUS_SIZE, max_events=MAX_TRACE_EVENTS, seed=SEED):
    """Yield ``count`` (program, recording run) pairs small enough to explore."""
    rng = random.Random(seed)
    produced = 0
    while produced < count:
        program = random_program(
            rng, max_messages=3, forward_probability=0.2, name=f"diff{produced}"
        )
        run = run_program(program, seed=0)
        if run.deadlocked or len(run.trace) > max_events:
            continue
        produced += 1
        yield program, run


class TestDifferentialVerdicts:
    def test_symbolic_agrees_with_both_explorers(self):
        """On every corpus program the symbolic verdict, exhaustive
        exploration and sleep-set exploration agree on violation existence;
        feasibility agrees with the existence of complete runs; and the
        generator's deadlock-freedom guarantee holds."""
        violations = 0
        for program, run in _corpus():
            session = VerificationSession(
                run.trace, options=OPTIONS, program_run=run
            )
            verdict = session.verdict().verdict
            assert verdict is not Verdict.UNKNOWN, program.name

            explicit = ExplicitStateExplorer(program).explore()
            sleepset = SleepSetExplorer(program).explore()
            assert not explicit.truncated and not sleepset.truncated

            symbolic_violation = verdict is Verdict.VIOLATION
            assert symbolic_violation == bool(explicit.assertion_failures), (
                f"{program.name}: symbolic={verdict} "
                f"explicit={explicit.summary()}"
            )
            assert symbolic_violation == bool(sleepset.assertion_failures), (
                f"{program.name}: symbolic={verdict} "
                f"sleepset={sleepset.summary()}"
            )
            assert explicit.deadlocks == 0 and sleepset.deadlocks == 0
            assert session.feasibility() == (explicit.complete_runs > 0)

            # The admissible-matching sets must coincide too, not just the
            # boolean verdict (cheap here: the corpus is capped small).
            symbolic_matchings = {
                canonical_matching(session.trace, matching)
                for matching in session.pairings()
            }
            assert symbolic_matchings == explicit.matchings, program.name
            assert symbolic_matchings == sleepset.matchings, program.name

            violations += symbolic_violation
        # The corpus must be a genuine mix, or the agreement is vacuous.
        assert 0 < violations < CORPUS_SIZE

    def test_witnesses_are_real_matchings(self):
        """Every symbolic VIOLATION witness names a matching the exhaustive
        explorer actually observed."""
        checked = 0
        for program, run in _corpus(count=60):
            session = VerificationSession(
                run.trace, options=OPTIONS, program_run=run
            )
            result = session.verdict()
            if result.verdict is not Verdict.VIOLATION:
                continue
            explicit = ExplicitStateExplorer(program).explore()
            witness = canonical_matching(session.trace, result.witness.matching)
            assert witness in explicit.matchings, program.name
            checked += 1
        assert checked > 0


class TestDifferentialParallel:
    def test_parallel_and_serial_verify_many_identical(self):
        """Sharding, dedup and witness translation must not change a single
        verdict or drop a single witness, and order must be preserved."""
        traces = [run.trace for _, run in _corpus(count=24, seed=SEED + 1)]
        serial = verify_many(traces, options=OPTIONS)
        parallel = verify_many_parallel(traces, jobs=2, options=OPTIONS)
        assert len(serial) == len(parallel) == len(traces)
        for index, (s, p) in enumerate(zip(serial, parallel)):
            assert s.verdict == p.verdict, index
            assert (s.witness is None) == (p.witness is None), index
            assert p.trace is traces[index]

    def test_parallel_cache_round_trip_preserves_verdicts(self):
        traces = [run.trace for _, run in _corpus(count=16, seed=SEED + 2)]
        from repro.verification import ResultCache

        cache = ResultCache()
        first = verify_many_parallel(traces, jobs=2, cache=cache)
        second = verify_many_parallel(traces, jobs=2, cache=cache)
        assert [r.verdict for r in first] == [r.verdict for r in second]
        assert all(r.from_cache for r in second)
