"""Tests for per-query solver deadlines: ``timeout_s`` on sessions and
batches, the UNKNOWN(timeout) verdict, and its non-caching semantics."""

import time

import pytest

from repro.smt import CheckResult, DpllTBackend, Ge, IntVal, IntVar
from repro.verification.cache import ResultCache, make_cache_key
from repro.verification.result import Verdict
from repro.verification.session import VerificationSession, verify_many
from repro.workloads import circular_wait, figure1_program, pipeline

x = IntVar("x")


class TestBackendDeadline:
    def test_lapsed_deadline_returns_unknown(self):
        backend = DpllTBackend()
        backend.add(Ge(x, IntVal(0)))
        backend.set_deadline(time.monotonic() - 1.0)
        assert backend.check() is CheckResult.UNKNOWN

    def test_clearing_deadline_restores_solving(self):
        backend = DpllTBackend()
        backend.add(Ge(x, IntVal(0)))
        backend.set_deadline(time.monotonic() - 1.0)
        assert backend.check() is CheckResult.UNKNOWN
        backend.set_deadline(None)
        assert backend.check() is CheckResult.SAT

    def test_generous_deadline_does_not_interfere(self):
        backend = DpllTBackend()
        backend.add(Ge(x, IntVal(0)))
        backend.set_deadline(time.monotonic() + 60.0)
        assert backend.check() is CheckResult.SAT


class TestSessionTimeout:
    def test_zero_budget_reports_timeout(self):
        session = VerificationSession.from_program(figure1_program(assert_a_is_y=True), seed=0)
        result = session.verdict(timeout_s=0.0)
        assert result.verdict is Verdict.UNKNOWN
        assert result.unknown_reason == "timeout"
        assert result.timed_out

    def test_timed_out_result_is_not_memoised(self):
        """A bigger budget must be able to retry: the session memo skips
        UNKNOWN(timeout) verdicts."""
        session = VerificationSession.from_program(figure1_program(assert_a_is_y=True), seed=0)
        assert session.verdict(timeout_s=0.0).timed_out
        retry = session.verdict()
        assert retry.verdict is Verdict.VIOLATION
        assert not retry.from_cache

    def test_generous_budget_solves_normally(self):
        session = VerificationSession.from_program(figure1_program(assert_a_is_y=True), seed=0)
        result = session.verdict(timeout_s=60.0)
        assert result.verdict is Verdict.VIOLATION
        assert result.unknown_reason is None

    def test_deadlock_mode_timeout(self):
        session = VerificationSession.from_program(
            circular_wait(3), seed=0, on_deadlock="static"
        )
        result = session.deadlocks(timeout_s=0.0)
        assert result.verdict is Verdict.UNKNOWN
        assert result.unknown_reason == "timeout"
        retry = session.deadlocks()
        assert retry.verdict is Verdict.VIOLATION

    def test_orphan_mode_timeout(self):
        session = VerificationSession.from_program(pipeline(3), seed=0)
        result = session.orphans(timeout_s=0.0)
        assert result.verdict is Verdict.UNKNOWN
        assert result.unknown_reason == "timeout"
        retry = session.orphans()
        assert retry.verdict in (Verdict.SAFE, Verdict.VIOLATION)

    def test_backend_deadline_cleared_after_timeout(self):
        """The deadline is call-scoped: a timed-out verdict() must not leave
        the backend poisoned for the next check."""
        session = VerificationSession.from_program(figure1_program(assert_a_is_y=True), seed=0)
        session.verdict(timeout_s=0.0)
        assert session._backend._engine.check() in (
            CheckResult.SAT,
            CheckResult.UNSAT,
        )


class TestBatchTimeout:
    def test_serial_batch_applies_budget_per_item(self):
        results = verify_many(
            [figure1_program(assert_a_is_y=True), pipeline(3)], timeout_s=0.0
        )
        assert [r.verdict for r in results] == [Verdict.UNKNOWN] * 2
        assert all(r.unknown_reason == "timeout" for r in results)

    def test_parallel_batch_applies_budget_per_item(self):
        results = verify_many(
            [figure1_program(assert_a_is_y=True), figure1_program(assert_a_is_y=True)], jobs=2, timeout_s=0.0
        )
        assert all(r.unknown_reason == "timeout" for r in results)

    def test_batch_without_budget_is_conclusive(self):
        results = verify_many([figure1_program(assert_a_is_y=True)], timeout_s=None)
        assert results[0].verdict is Verdict.VIOLATION


class TestTimeoutCacheInteraction:
    def test_timed_out_results_never_cached(self, tmp_path):
        session = VerificationSession.from_program(figure1_program(assert_a_is_y=True), seed=0)
        result = session.verdict(timeout_s=0.0)
        cache = ResultCache(directory=str(tmp_path / "cache"))
        key = make_cache_key(session.trace)
        assert cache.store(key, result) is False
        assert cache.lookup(key, session.trace) is None

    def test_cached_conclusive_answer_wins_over_budget(self, tmp_path):
        """Once a conclusive answer is on disk, even a zero budget gets it:
        cache lookup precedes solving."""
        cache_dir = str(tmp_path / "cache")
        first = verify_many([figure1_program(assert_a_is_y=True)], cache_dir=cache_dir)
        assert first[0].verdict is Verdict.VIOLATION
        second = verify_many(
            [figure1_program(assert_a_is_y=True)], cache_dir=cache_dir, timeout_s=0.0
        )
        assert second[0].verdict is Verdict.VIOLATION
        assert second[0].from_cache


class TestCliTimeout:
    def test_single_query_timeout_flag(self, capsys):
        from repro.verification.cli import main

        rc = main(["--workload", "figure1", "--timeout", "0"])
        out = capsys.readouterr().out
        assert rc == 0  # unknown is not a violation
        assert "unknown reason: timeout" in out

    def test_batch_timeout_flag(self, capsys):
        from repro.verification.cli import main

        rc = main(["--workload", "figure1", "--repeat", "2", "--timeout", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reason=timeout" in out
