"""Tests for the parallel batch-verification subsystem: process sharding,
fingerprint dedup, the result cache (memory + disk), portfolio racing, and
worker-safe backend specs."""

import os
import stat
import sys

import pytest

from repro.encoding.encoder import EncoderOptions
from repro.program import run_program
from repro.smt.backend import BackendSpec, DpllTBackend
from repro.trace import trace_fingerprint
from repro.utils.errors import EncodingError, SolverError
from repro.verification import (
    ParallelVerifier,
    ResultCache,
    Verdict,
    make_cache_key,
    verify_many,
    verify_many_parallel,
)
from repro.workloads import (
    figure1_program,
    pipeline,
    racy_fanin,
    scatter_gather,
)


def _mixed_batch(copies=2):
    """A batch with known verdicts and in-batch duplicates (varying seeds)."""
    programs = [
        figure1_program(assert_a_is_y=True),  # violation
        pipeline(3),  # safe
        racy_fanin(2, assert_first_from_sender0=True),  # violation
        scatter_gather(2),  # safe
    ]
    traces = [
        run_program(program, seed=seed).trace
        for seed in range(copies)
        for program in programs
    ]
    expected = [
        Verdict.VIOLATION,
        Verdict.SAFE,
        Verdict.VIOLATION,
        Verdict.SAFE,
    ] * copies
    return traces, expected


class TestBackendSpec:
    def test_normalisation(self):
        assert BackendSpec.of(None).name == "dpllt"
        assert BackendSpec.of("smtlib").name == "smtlib"
        spec = BackendSpec.of("dpllt", max_iterations=7)
        assert spec.kwargs == (("max_iterations", 7),)
        assert BackendSpec.of(spec) is spec

    def test_of_merges_kwargs(self):
        base = BackendSpec.of("dpllt", max_iterations=7)
        merged = BackendSpec.of(base, max_iterations=9)
        assert merged.kwargs == (("max_iterations", 9),)

    def test_live_backend_rejected(self):
        with pytest.raises(SolverError):
            BackendSpec.of(DpllTBackend())

    def test_create_builds_fresh_instances(self):
        spec = BackendSpec.of("dpllt", max_iterations=123)
        first, second = spec.create(), spec.create()
        assert first is not second
        assert isinstance(first, DpllTBackend)

    def test_spec_is_picklable_and_hashable(self):
        import pickle

        spec = BackendSpec.of("dpllt", max_iterations=5)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert {spec: 1}[spec] == 1

    def test_create_backend_accepts_spec(self):
        from repro.smt.backend import create_backend

        backend = create_backend(BackendSpec.of("dpllt", max_iterations=0))
        assert isinstance(backend, DpllTBackend)


class TestParallelVerifyMany:
    def test_matches_serial_in_order(self):
        traces, expected = _mixed_batch()
        serial = verify_many(traces)
        parallel = verify_many_parallel(traces, jobs=2)
        assert [r.verdict for r in serial] == expected
        assert [r.verdict for r in parallel] == expected
        for s, p in zip(serial, parallel):
            if s.witness is not None:
                assert p.witness is not None

    def test_single_job_path(self):
        traces, expected = _mixed_batch(copies=1)
        results = verify_many_parallel(traces, jobs=1)
        assert [r.verdict for r in results] == expected

    def test_programs_accepted_and_runs_attached(self):
        results = verify_many_parallel(
            [figure1_program(assert_a_is_y=True), pipeline(3)], jobs=2
        )
        assert [r.verdict for r in results] == [Verdict.VIOLATION, Verdict.SAFE]
        assert all(r.program_run is not None for r in results)

    def test_in_batch_dedup_marks_duplicates(self):
        """Fingerprint-equal traces are solved once; duplicates are answered
        without solving and their witnesses translated onto their own ids."""
        traces = [run_program(racy_fanin(2, assert_first_from_sender0=True), seed=s).trace
                  for s in range(4)]
        assert len({trace_fingerprint(t) for t in traces}) == 1
        results = verify_many_parallel(traces, jobs=2)
        assert [r.verdict for r in results] == [Verdict.VIOLATION] * 4
        assert sum(1 for r in results if r.from_cache) == 3
        for result, trace in zip(results, traces):
            assert result.witness is not None
            recv_ids = {op.recv_id for op in trace.receive_operations()}
            send_ids = {event.send_id for event in trace.sends()}
            assert set(result.witness.matching) <= recv_ids
            assert set(result.witness.matching.values()) <= send_ids

    def test_rejects_foreign_items(self):
        with pytest.raises(EncodingError):
            verify_many_parallel(["nope"], jobs=1)

    def test_rejects_bad_jobs(self):
        with pytest.raises(SolverError):
            ParallelVerifier(jobs=0)

    def test_empty_batch(self):
        assert verify_many_parallel([], jobs=4) == []

    def test_verify_many_delegates_jobs_and_cache(self):
        traces, expected = _mixed_batch(copies=1)
        cache = ResultCache()
        results = verify_many(traces, jobs=2, cache=cache)
        assert [r.verdict for r in results] == expected
        assert cache.stores == len(traces)
        again = verify_many(traces, jobs=2, cache=cache)
        assert all(r.from_cache for r in again)
        assert [r.verdict for r in again] == expected

    def test_verify_many_rejects_live_backend_with_jobs(self):
        with pytest.raises(SolverError):
            verify_many([pipeline(2)], jobs=2, backend=DpllTBackend())


class TestResultCache:
    def test_memory_roundtrip_translates_witness(self):
        program = racy_fanin(2, assert_first_from_sender0=True)
        first = run_program(program, seed=0).trace
        second = run_program(program, seed=3).trace
        cache = ResultCache()
        results = verify_many_parallel([first], cache=cache, jobs=1)
        assert cache.stores == 1
        key = make_cache_key(second)
        hit = cache.lookup(key, second)
        assert hit is not None and hit.from_cache
        assert hit.verdict is Verdict.VIOLATION
        assert hit.problem is None
        recv_ids = {op.recv_id for op in second.receive_operations()}
        assert set(hit.witness.matching) <= recv_ids
        assert "cache" in hit.describe()

    def test_unknown_never_cached(self):
        trace = run_program(figure1_program(assert_a_is_y=True), seed=0).trace
        cache = ResultCache()
        results = verify_many_parallel(
            [trace], cache=cache, jobs=1, max_solver_iterations=0
        )
        assert results[0].verdict is Verdict.UNKNOWN
        assert cache.stores == 0
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        traces = [
            run_program(program, seed=0).trace
            for program in (pipeline(2), pipeline(3), pipeline(4))
        ]
        verify_many_parallel(traces, cache=cache, jobs=1)
        assert len(cache) == 2  # oldest entry evicted

    def test_disk_store_survives_processes(self, tmp_path):
        traces, expected = _mixed_batch(copies=1)
        directory = str(tmp_path / "cache")
        verify_many_parallel(traces, jobs=1, cache_dir=directory)
        assert any(name.endswith(".json") for name in os.listdir(directory))
        fresh = ResultCache(directory=directory)  # empty memory layer
        results = verify_many_parallel(traces, jobs=1, cache=fresh)
        assert [r.verdict for r in results] == expected
        assert all(r.from_cache for r in results)
        assert fresh.misses == 0

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path)
        trace = run_program(pipeline(2), seed=0).trace
        cache = ResultCache(directory=directory)
        verify_many_parallel([trace], jobs=1, cache=cache)
        (path,) = [
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".json") and not name.startswith("_")
        ]
        with open(path, "w") as handle:
            handle.write("{torn")
        fresh = ResultCache(directory=directory)
        assert fresh.lookup(make_cache_key(trace), trace) is None
        assert fresh.misses == 1

    def test_explicit_properties_never_shared_across_renumbered_traces(self):
        """Regression: fingerprint-equal traces can bind the same recv_id to
        different logical receives (ids follow the interleaving).  An
        explicit property naming a trace-local id must therefore never hit
        an entry written by a differently-numbered trace — the batch verdict
        has to match the per-trace sessions exactly."""
        from repro.encoding.properties import ReceiveValueProperty
        from repro.smt import Eq, IntVal
        from repro.verification import VerificationSession

        def recv_bindings(trace):
            return {
                op.recv_id: trace[op.issue_event_id].thread
                for op in trace.receive_operations()
            }

        program = scatter_gather(2)
        first = run_program(program, seed=0).trace
        second = next(
            trace
            for seed in range(1, 20)
            for trace in [run_program(program, seed=seed).trace]
            if recv_bindings(trace) != recv_bindings(first)
        )
        assert trace_fingerprint(first) == trace_fingerprint(second)
        properties = [ReceiveValueProperty(1, lambda v: Eq(v, IntVal(1)))]
        expected = [
            VerificationSession(t, properties=properties).verdict().verdict
            for t in (first, second)
        ]
        batch = verify_many_parallel(
            [first, second], jobs=1, properties=properties, cache=ResultCache()
        )
        assert [r.verdict for r in batch] == expected
        assert make_cache_key(first, properties=properties) != make_cache_key(
            second, properties=properties
        )

    def test_key_components_invalidate(self):
        trace = run_program(pipeline(2), seed=0).trace
        base = make_cache_key(trace)
        assert make_cache_key(trace, backend="smtlib") != base
        assert (
            make_cache_key(trace, options=EncoderOptions(enforce_pair_fifo=True))
            != base
        )
        assert base.digest() != make_cache_key(trace, backend="smtlib").digest()

    def test_statistics_shape(self):
        cache = ResultCache()
        trace = run_program(pipeline(2), seed=0).trace
        cache.lookup(make_cache_key(trace), trace)
        stats = cache.statistics()
        assert stats["misses"] == 1 and stats["hits"] == 0

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


def _stub_solver(tmp_path, body: str) -> str:
    script = tmp_path / "portfolio-stub"
    script.write_text(f"#!{sys.executable}\n{body}\n")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


class TestPortfolio:
    def test_portfolio_without_external_solver_degrades(self, monkeypatch):
        """With smtlib unavailable the portfolio is dpllt alone."""
        monkeypatch.delenv("REPRO_SMT_SOLVER", raising=False)
        traces, expected = _mixed_batch(copies=1)
        results = verify_many_parallel(traces, jobs=1, portfolio=True)
        assert [r.verdict for r in results] == expected
        assert all(r.backend == "dpllt" for r in results)

    def test_portfolio_backend_key_separates_cache_entries(self):
        trace = run_program(pipeline(2), seed=0).trace
        verifier = ParallelVerifier(jobs=1, portfolio=True)
        assert verifier.backend_key.startswith("portfolio(")
        plain = ParallelVerifier(jobs=1)
        assert plain._key_for(trace) != verifier._key_for(trace)

    def test_portfolio_races_stub_external_solver(self, tmp_path, monkeypatch):
        """A conclusive answer from either contender wins; a slow stub never
        blocks the dpllt engine's verdict."""
        slow = _stub_solver(
            tmp_path, "import time\ntime.sleep(8)\nprint('unknown')"
        )
        monkeypatch.setenv("REPRO_SMT_SOLVER", slow)
        trace = run_program(pipeline(2), seed=0).trace
        import time

        start = time.perf_counter()
        results = verify_many_parallel([trace], jobs=1, portfolio=True)
        # The dpllt verdict must come back without joining the slow loser.
        assert time.perf_counter() - start < 6
        assert results[0].verdict is Verdict.SAFE
        assert results[0].backend == "dpllt"

    def test_portfolio_survives_garbage_external_solver(
        self, tmp_path, monkeypatch
    ):
        noisy = _stub_solver(tmp_path, "print('flagrant nonsense')")
        monkeypatch.setenv("REPRO_SMT_SOLVER", noisy)
        trace = run_program(pipeline(2), seed=0).trace
        results = verify_many_parallel([trace], jobs=1, portfolio=True)
        assert results[0].verdict is Verdict.SAFE
        assert results[0].backend == "dpllt"

    def test_portfolio_with_no_backends_rejected(self):
        with pytest.raises(SolverError):
            ParallelVerifier(portfolio=True, backends=[])

    def test_unknown_cache_spec_rejected(self):
        with pytest.raises(SolverError):
            ParallelVerifier(cache="redis")


class TestTheoryPortfolio:
    def test_theory_portfolio_races_online_vs_offline(self):
        """portfolio='theory' answers every trace correctly and names the
        winning contender's mode on the result and in its statistics."""
        traces, expected = _mixed_batch(copies=1)
        results = verify_many_parallel(traces, jobs=1, portfolio="theory")
        assert [r.verdict for r in results] == expected
        for result in results:
            assert result.backend in ("dpllt[online]", "dpllt[offline]")
            stats = result.solver_statistics or {}
            if stats:  # the winner reports which theory mode it ran
                assert stats.get("theory_mode") in ("online", "offline")

    def test_theory_portfolio_lineup_and_cache_key(self):
        from repro.verification.parallel import theory_portfolio

        specs = theory_portfolio(max_solver_iterations=9)
        assert [dict(s.kwargs)["theory_mode"] for s in specs] == [
            "online",
            "offline",
        ]
        assert all(s.name == "dpllt" for s in specs)
        verifier = ParallelVerifier(jobs=1, portfolio="theory")
        assert (
            verifier.backend_key == "portfolio(dpllt[online]|dpllt[offline])"
        )
        backends = ParallelVerifier(jobs=1, portfolio=True)
        assert verifier.backend_key != backends.backend_key

    def test_theory_portfolio_matches_serial_verdicts(self):
        traces, _ = _mixed_batch(copies=1)
        serial = verify_many(traces)
        raced = verify_many(traces, portfolio="theory")
        assert [r.verdict for r in serial] == [r.verdict for r in raced]

    def test_unknown_portfolio_value_rejected(self):
        with pytest.raises(SolverError):
            ParallelVerifier(portfolio="quantum")

    def test_theory_mode_conflicts_with_theory_portfolio(self):
        traces, _ = _mixed_batch(copies=1)
        with pytest.raises(SolverError):
            verify_many(traces, portfolio="theory", theory_mode="online")

    def test_solver_knobs_travel_through_verify_many(self):
        """reduce_db/theory_bump/idl_propagation reach the worker backends
        (serial and spec-folded lanes) without changing verdicts."""
        traces, expected = _mixed_batch(copies=1)
        tuned = verify_many(
            traces, reduce_db=False, theory_bump=0.0, idl_propagation=False
        )
        assert [r.verdict for r in tuned] == expected
        sharded = verify_many(traces, jobs=1, cache="memory", reduce_db=False)
        assert [r.verdict for r in sharded] == expected
        with pytest.raises(SolverError):
            verify_many(traces, portfolio=True, reduce_db=False)
