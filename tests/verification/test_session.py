"""Tests for the session-based verification API: encode-once semantics,
incremental query streams, UNKNOWN surfacing, and the batch front door."""

import pytest

from repro.baselines.explicit import ExplicitStateExplorer, canonical_matching
from repro.encoding.encoder import TraceEncoder
from repro.program import ProgramBuilder, run_program
from repro.smt import CheckResult, DpllTBackend
from repro.utils.errors import (
    EncodingError,
    IncompleteEnumerationError,
    SolverError,
    UnknownBackendError,
)
from repro.verification import (
    SymbolicVerifier,
    Verdict,
    VerificationSession,
    verify_many,
)
from repro.workloads import (
    X_VALUE,
    Y_VALUE,
    figure1_program,
    figure4a_pairing,
    figure4b_pairing,
    pipeline,
    racy_fanin,
    scatter_gather,
)


class CountingEncoder(TraceEncoder):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.encode_calls = 0

    def encode(self, *args, **kwargs):
        self.encode_calls += 1
        return super().encode(*args, **kwargs)


class TestSessionQueries:
    def test_verdict_violation_with_witness(self):
        session = VerificationSession.from_program(
            figure1_program(assert_a_is_y=True), seed=0
        )
        result = session.verdict()
        assert result.verdict is Verdict.VIOLATION
        assert result.witness is not None
        assert result.backend == "dpllt"
        # Cached: same object on repeat calls.
        assert session.verdict() is result

    def test_verdict_safe(self):
        session = VerificationSession.from_program(pipeline(3), seed=0)
        assert session.verdict().verdict is Verdict.SAFE

    def test_feasibility_and_reachability_share_one_backend(self):
        session = VerificationSession.from_program(figure1_program(), seed=0)
        assert session.feasibility()
        backend = session.backend
        trace = session.trace
        sends_by_value = {s.payload_value: s.send_id for s in trace.sends()}
        recv_by_var = {
            getattr(trace[op.issue_event_id], "target_variable", None): op.recv_id
            for op in trace.receive_operations()
        }
        assert session.reachable({recv_by_var["A"]: sends_by_value[Y_VALUE]})
        assert session.reachable({recv_by_var["A"]: sends_by_value[X_VALUE]})
        assert not session.reachable({recv_by_var["C"]: sends_by_value[X_VALUE]})
        assert session.backend is backend  # never rebuilt

    def test_verdict_does_not_pollute_enumeration(self):
        """¬PProp is assumed, not asserted: the pairing enumeration after a
        VIOLATION verdict must still see every admissible matching."""
        session = VerificationSession.from_program(
            figure1_program(assert_a_is_y=True), seed=0
        )
        assert session.verdict().verdict is Verdict.VIOLATION
        assert len(session.enumerate_pairings()) == 2
        assert session.feasibility()

    def test_pairings_generator_is_lazy_and_restorable(self):
        session = VerificationSession.from_program(racy_fanin(3), seed=0)
        gen = session.pairings()
        first = next(gen)
        assert isinstance(first, dict)
        gen.close()  # abandon mid-enumeration: scope must unwind
        # Full enumeration afterwards still sees all 6 matchings.
        assert len(session.enumerate_pairings()) == 6

    def test_pairings_pause_and_restore_idl_propagation(self):
        """Enumeration pauses the IDL propagation lane (a SAT-model stream
        gains nothing from it) and restores it afterwards — unless the
        session pinned the knob explicitly."""
        session = VerificationSession.from_program(racy_fanin(3), seed=0)
        session.feasibility()  # materialise the backend
        core = session.backend.engine._core
        assert core._idl_propagation is True
        gen = session.pairings()
        next(gen)
        assert core._idl_propagation is False
        gen.close()
        assert core._idl_propagation is True

        pinned = VerificationSession.from_program(
            racy_fanin(3), seed=0, idl_propagation=True
        )
        pinned.feasibility()
        pinned_core = pinned.backend.engine._core
        gen = pinned.pairings()
        next(gen)
        assert pinned_core._idl_propagation is True
        gen.close()

    def test_abandoned_generator_unwinds_on_gc(self):
        """Regression: a pairings() generator dropped without close() must
        release the enumeration guard and solver scope when collected, not
        leave every later query raising 'enumeration is active'."""
        import gc

        session = VerificationSession.from_program(racy_fanin(3), seed=0)
        gen = session.pairings()
        next(gen)
        del gen
        gc.collect()
        assert session.feasibility()
        assert len(session.enumerate_pairings()) == 6

    def test_consumer_exception_unwinds_enumeration(self):
        """Regression: an exception raised *by the consumer* mid-iteration
        abandons the generator; the session must recover."""
        import gc

        session = VerificationSession.from_program(racy_fanin(2), seed=0)
        with pytest.raises(RuntimeError):
            for _ in session.pairings():
                raise RuntimeError("consumer failure")
        gc.collect()
        assert session.verdict() is not None
        assert len(session.enumerate_pairings()) == 2

    def test_close_before_first_next_is_harmless(self):
        session = VerificationSession.from_program(racy_fanin(2), seed=0)
        gen = session.pairings()
        gen.close()  # never started: no scope was pushed, nothing to unwind
        assert session.feasibility()
        assert len(session.enumerate_pairings()) == 2

    def test_second_enumeration_rejected_eagerly(self):
        """The guard fires at the pairings() call itself, not at the first
        next(), so misuse cannot hide inside an unconsumed generator."""
        session = VerificationSession.from_program(racy_fanin(2), seed=0)
        gen = session.pairings()
        next(gen)
        with pytest.raises(SolverError):
            session.pairings()
        gen.close()
        assert len(session.enumerate_pairings()) == 2

    def test_unknown_enumeration_unwinds_guard(self):
        """IncompleteEnumerationError must leave the session usable with a
        bigger budget, not stuck in the enumeration guard."""
        session = VerificationSession.from_program(
            racy_fanin(2), seed=0, max_solver_iterations=0
        )
        with pytest.raises(IncompleteEnumerationError):
            session.enumerate_pairings()
        session._max_iterations = 200_000  # simulate a budget bump
        session._backend = None  # rebuild lazily with the new budget
        assert len(session.enumerate_pairings()) == 2

    def test_pairings_limit(self):
        session = VerificationSession.from_program(racy_fanin(3), seed=0)
        assert len(session.enumerate_pairings(limit=2)) == 2

    def test_concurrent_enumerations_rejected(self):
        session = VerificationSession.from_program(racy_fanin(2), seed=0)
        gen = session.pairings()
        next(gen)
        with pytest.raises(SolverError):
            next(session.pairings())
        gen.close()

    def test_queries_rejected_while_enumeration_active(self):
        """Blocking clauses of a live enumeration must never silently leak
        into verdict/feasibility/reachability answers."""
        session = VerificationSession.from_program(
            figure1_program(assert_a_is_y=True), seed=0
        )
        gen = session.pairings()
        first = next(gen)
        with pytest.raises(SolverError):
            session.reachable(first)
        with pytest.raises(SolverError):
            session.feasibility()
        with pytest.raises(SolverError):
            session.verdict()
        gen.close()
        # After the enumeration closes, the answers are correct (the verdict
        # must not have been cached as SAFE by the blocked attempt).
        assert session.reachable(first)
        assert session.verdict().verdict is Verdict.VIOLATION

    def test_pairings_match_explicit_exploration(self):
        program = racy_fanin(3)
        session = VerificationSession.from_program(program, seed=0)
        symbolic = {
            canonical_matching(session.trace, m) for m in session.pairings()
        }
        explicit = ExplicitStateExplorer(program).explore().matchings
        assert symbolic == explicit

    def test_figure4_pairings_through_session(self):
        session = VerificationSession.from_program(figure1_program(), seed=0)
        from repro.encoding.witness import Witness

        descriptions = [
            Witness(matching=m).pairing_description(session.problem)
            for m in session.pairings()
        ]
        assert figure4a_pairing() in descriptions
        assert figure4b_pairing() in descriptions
        assert len(descriptions) == 2


class TestEncodeOnce:
    def test_all_queries_encode_exactly_once(self):
        run = run_program(figure1_program(assert_a_is_y=True), seed=0)
        encoder = CountingEncoder()
        session = VerificationSession(run.trace, encoder=encoder, program_run=run)
        session.verdict()
        session.feasibility()
        session.enumerate_pairings()
        session.verdict()
        assert encoder.encode_calls == 1
        assert session.encode_count == 1

    def test_legacy_verifier_encodes_per_call(self):
        """The shim intentionally preserves call-per-query semantics."""
        run = run_program(figure1_program(assert_a_is_y=True), seed=0)
        verifier = SymbolicVerifier()
        verifier.encoder = CountingEncoder()
        verifier.verify_trace(run.trace)
        verifier.feasibility(run.trace)
        assert verifier.encoder.encode_calls == 2


class TestUnknownSurfacing:
    """The seed bug: UNKNOWN used to terminate enumeration as if exhaustive."""

    def test_session_pairings_raise_on_unknown(self):
        session = VerificationSession.from_program(
            racy_fanin(3), seed=0, max_solver_iterations=0
        )
        with pytest.raises(IncompleteEnumerationError) as excinfo:
            session.enumerate_pairings()
        assert excinfo.value.pairings == []

    def test_legacy_enumerate_pairings_raises_on_unknown(self):
        verifier = SymbolicVerifier(max_solver_iterations=0)
        run = run_program(racy_fanin(3), seed=0)
        with pytest.raises(IncompleteEnumerationError):
            verifier.enumerate_pairings(run.trace)

    def test_verdict_unknown_flagged(self):
        session = VerificationSession.from_program(
            figure1_program(assert_a_is_y=True), seed=0, max_solver_iterations=0
        )
        assert session.verdict().verdict is Verdict.UNKNOWN


class TestSessionConstruction:
    def test_from_program_rejects_deadlock(self):
        builder = ProgramBuilder("stuck")
        builder.thread("a").recv("x")
        with pytest.raises(EncodingError):
            VerificationSession.from_program(builder.build(), seed=0)

    def test_unknown_backend_name(self):
        session = VerificationSession.from_program(
            figure1_program(), seed=0, backend="nope"
        )
        with pytest.raises(UnknownBackendError):
            session.feasibility()

    def test_explicit_backend_instance(self):
        backend = DpllTBackend()
        session = VerificationSession.from_program(
            figure1_program(), seed=0, backend=backend
        )
        assert session.feasibility()
        assert session.backend is backend
        assert session.backend_name == "dpllt"

    def test_statistics_empty_before_first_query(self):
        session = VerificationSession.from_program(figure1_program(), seed=0)
        assert session.statistics() == {}
        session.feasibility()
        assert session.statistics()["checks"] >= 1


class TestVerifyMany:
    def test_batch_of_programs_and_traces(self):
        trace = run_program(scatter_gather(2, assert_order=True), seed=0).trace
        results = verify_many(
            [
                figure1_program(assert_a_is_y=True),
                pipeline(3),
                trace,
            ]
        )
        assert [r.verdict for r in results] == [
            Verdict.VIOLATION,
            Verdict.SAFE,
            Verdict.VIOLATION,
        ]
        assert results[0].program_run is not None
        assert results[2].trace is trace

    def test_rejects_foreign_items(self):
        with pytest.raises(EncodingError):
            verify_many(["not a program"])

    def test_rejects_shared_backend_instance(self):
        with pytest.raises(SolverError):
            verify_many([pipeline(2), pipeline(3)], backend=DpllTBackend())

    def test_empty_batch(self):
        assert verify_many([]) == []
