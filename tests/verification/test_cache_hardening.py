"""Tests for the hardened on-disk result store: advisory locking,
size-bounded LRU eviction, index rebuild and corrupt-entry quarantine."""

import json
import os

import pytest

from repro.program.interpreter import run_program
from repro.verification.cache import (
    CACHE_SCHEMA_VERSION,
    CacheKey,
    ResultCache,
    make_cache_key,
)
from repro.verification.result import Verdict, VerificationResult
from repro.workloads import pipeline


@pytest.fixture(scope="module")
def trace():
    return run_program(pipeline(2), seed=0).trace


def _key(tag: str) -> CacheKey:
    return CacheKey(
        fingerprint=f"fp-{tag}", properties="p", options="o", backend="dpllt"
    )


def _result(trace) -> VerificationResult:
    return VerificationResult(verdict=Verdict.SAFE, trace=trace, backend="dpllt")


def _entry_files(directory: str):
    return sorted(
        name
        for name in os.listdir(directory)
        if name.endswith(".json") and not name.startswith("_")
    )


class TestLocking:
    def test_store_mutations_create_the_lock_file(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.store(_key("a"), _result(trace))
        assert os.path.exists(os.path.join(directory, "_lock"))

    def test_two_instances_share_one_store(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory)
        writer.store(_key("a"), _result(trace))
        reader = ResultCache(directory=directory)
        hit = reader.lookup(_key("a"), trace)
        assert hit is not None
        assert hit.verdict is Verdict.SAFE
        assert hit.from_cache

    def test_memory_only_cache_needs_no_lock(self, trace):
        cache = ResultCache()
        cache.store(_key("a"), _result(trace))
        assert cache.lookup(_key("a"), trace) is not None


class TestBoundedStore:
    def test_max_entries_evicts_least_recently_used(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=2)
        for tag in ("a", "b", "c"):
            cache.store(_key(tag), _result(trace))
        assert len(_entry_files(directory)) == 2
        assert cache.evictions == 1
        # The oldest entry ("a") is the victim: a fresh instance misses it
        # but still hits the survivors.
        fresh = ResultCache(directory=directory, max_entries=2)
        assert fresh.lookup(_key("a"), trace) is None
        assert fresh.lookup(_key("c"), trace) is not None

    def test_lookup_refreshes_recency(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=2)
        cache.store(_key("a"), _result(trace))
        cache.store(_key("b"), _result(trace))
        # Touch "a" from a *fresh* instance (disk hit), then overflow: the
        # LRU victim must now be "b".
        toucher = ResultCache(directory=directory, max_entries=2)
        assert toucher.lookup(_key("a"), trace) is not None
        toucher.store(_key("c"), _result(trace))
        survivor = ResultCache(directory=directory, max_entries=2)
        assert survivor.lookup(_key("b"), trace) is None
        assert survivor.lookup(_key("a"), trace) is not None

    def test_max_bytes_bound(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_bytes=1)
        cache.store(_key("a"), _result(trace))
        cache.store(_key("b"), _result(trace))
        # Every entry is bigger than the bound, so at most the newest
        # write's eviction pass leaves the store empty.
        assert len(_entry_files(directory)) == 0
        assert cache.evictions == 2

    def test_unbounded_store_keeps_everything(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        for tag in ("a", "b", "c", "d"):
            cache.store(_key(tag), _result(trace))
        assert len(_entry_files(directory)) == 4
        assert cache.evictions == 0

    def test_index_sidecar_is_schema_stamped(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=4)
        cache.store(_key("a"), _result(trace))
        with open(os.path.join(directory, "_index.json"), encoding="utf-8") as fh:
            index = json.load(fh)
        assert index["schema"] == CACHE_SCHEMA_VERSION
        assert _key("a").digest() in index["entries"]

    def test_torn_index_is_rebuilt_from_scan(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=2)
        cache.store(_key("a"), _result(trace))
        cache.store(_key("b"), _result(trace))
        with open(os.path.join(directory, "_index.json"), "w") as fh:
            fh.write("{torn")
        # The next mutation rebuilds recency from the directory and still
        # enforces the bound.
        cache.store(_key("c"), _result(trace))
        assert len(_entry_files(directory)) == 2

    def test_missing_index_is_rebuilt(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=2)
        cache.store(_key("a"), _result(trace))
        os.unlink(os.path.join(directory, "_index.json"))
        cache.store(_key("b"), _result(trace))
        cache.store(_key("c"), _result(trace))
        assert len(_entry_files(directory)) == 2

    @pytest.mark.parametrize("kwargs", [{"max_entries": 0}, {"max_bytes": 0}])
    def test_invalid_bounds_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            ResultCache(directory=str(tmp_path / "cache"), **kwargs)


class TestQuarantine:
    def test_corrupt_entry_is_quarantined_once(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory)
        key = _key("a")
        writer.store(key, _result(trace))
        path = os.path.join(directory, key.digest() + ".json")
        with open(path, "w") as fh:
            fh.write("{corrupt json")
        reader = ResultCache(directory=directory)
        assert reader.lookup(key, trace) is None
        assert reader.quarantined == 1
        assert not os.path.exists(path)  # moved aside, not re-parsed forever
        quarantined = os.listdir(os.path.join(directory, "_quarantine"))
        assert quarantined == [key.digest() + ".json"]
        # A later lookup is a plain miss, not another quarantine.
        assert reader.lookup(key, trace) is None
        assert reader.quarantined == 1

    def test_quarantined_entry_leaves_the_bounded_index(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory, max_entries=4)
        key = _key("a")
        cache.store(key, _result(trace))
        with open(os.path.join(directory, key.digest() + ".json"), "w") as fh:
            fh.write("not json at all")
        fresh = ResultCache(directory=directory, max_entries=4)
        assert fresh.lookup(key, trace) is None
        with open(os.path.join(directory, "_index.json"), encoding="utf-8") as fh:
            index = json.load(fh)
        assert key.digest() not in index["entries"]

    def test_wrong_schema_entry_is_a_miss_not_a_quarantine(self, tmp_path, trace):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        key = _key("a")
        path = os.path.join(directory, key.digest() + ".json")
        with open(path, "w") as fh:
            json.dump({"schema": CACHE_SCHEMA_VERSION + 1, "verdict": "safe"}, fh)
        assert cache.lookup(key, trace) is None
        assert cache.quarantined == 0
        assert os.path.exists(path)  # valid JSON stays put


class TestStatistics:
    def test_counters_exposed(self, tmp_path, trace):
        cache = ResultCache(directory=str(tmp_path / "cache"), max_entries=1)
        cache.store(_key("a"), _result(trace))
        cache.store(_key("b"), _result(trace))
        stats = cache.statistics()
        assert stats["stores"] == 2
        assert stats["evictions"] == 1
        assert "quarantined" in stats
        assert "hits" in stats and "misses" in stats
