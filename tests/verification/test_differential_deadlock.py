"""Randomized differential testing of symbolic deadlock/orphan detection.

The partial-match encoding's deadlock and orphan verdicts are cross-checked
against the repo's two ground-truth oracles — exhaustive explicit-state
exploration and the sleep-set (DPOR) explorer — on a corpus of seeded
random programs generated with ``allow_deadlock=True`` (fan-in starvation,
circular waits and lost messages, mixed with clean topologies).

The corpus is branch-free, so the analysis is exact, and sessions encode
with ``enforce_pair_fifo=True`` to match the runtime's per-pair FIFO (the
same convention as the safety differential harness).  Traces come from
:func:`repro.program.statictrace.static_trace` — deadlocking programs have
no complete recording to offer — which the safety harness's fingerprint
test proves equivalent to recordings.

On top of verdict agreement, every deadlock witness over an all-blocking
trace is replayed on the simulator and must actually end in a blocked run.
"""

import random

import pytest

from repro.baselines.dpor import SleepSetExplorer
from repro.baselines.explicit import ExplicitStateExplorer
from repro.encoding import EncoderOptions
from repro.program.statictrace import static_trace
from repro.verification import Verdict, VerificationSession
from repro.verification.replay import replay_deadlock_witness
from repro.workloads import random_program

#: Corpus size (the issue requires >= 100).
CORPUS_SIZE = 110
#: Explicit exploration is exponential in trace length; 7 events keeps the
#: corpus exhaustively explorable while covering every injected fault kind.
MAX_TRACE_EVENTS = 7
SEED = 20260728

OPTIONS = EncoderOptions(enforce_pair_fifo=True)


def _corpus(count=CORPUS_SIZE, max_events=MAX_TRACE_EVENTS, seed=SEED):
    """Yield ``count`` (program, static trace) pairs small enough to explore."""
    rng = random.Random(seed)
    produced = 0
    while produced < count:
        program = random_program(
            rng,
            max_messages=3,
            forward_probability=0.2,
            allow_deadlock=True,
            name=f"dl{produced}",
        )
        trace = static_trace(program)
        if len(trace) > max_events:
            continue
        produced += 1
        yield program, trace


class TestDeadlockDifferential:
    def test_deadlock_and_orphan_verdicts_agree_with_both_explorers(self):
        deadlocks = orphans = 0
        for program, trace in _corpus():
            explicit = ExplicitStateExplorer(program).explore()
            sleepset = SleepSetExplorer(program).explore()
            assert not explicit.truncated and not sleepset.truncated

            session = VerificationSession(trace, options=OPTIONS)
            deadlock_verdict = session.deadlocks().verdict
            orphan_verdict = session.orphans().verdict
            assert deadlock_verdict is not Verdict.UNKNOWN, program.name
            assert orphan_verdict is not Verdict.UNKNOWN, program.name

            symbolic_deadlock = deadlock_verdict is Verdict.VIOLATION
            symbolic_orphan = orphan_verdict is Verdict.VIOLATION
            assert symbolic_deadlock == (explicit.deadlocks > 0), (
                f"{program.name}: symbolic={deadlock_verdict} "
                f"explicit={explicit.summary()}"
            )
            assert symbolic_deadlock == (sleepset.deadlocks > 0), (
                f"{program.name}: symbolic={deadlock_verdict} "
                f"sleepset={sleepset.summary()}"
            )
            assert symbolic_orphan == bool(explicit.orphan_messages), (
                f"{program.name}: symbolic={orphan_verdict} "
                f"explicit={explicit.summary()}"
            )
            assert symbolic_orphan == bool(sleepset.orphan_messages), (
                f"{program.name}: symbolic={orphan_verdict} "
                f"sleepset={sleepset.summary()}"
            )

            # Symbolic orphan witnesses must name sends the exhaustive
            # explorer actually saw orphaned.
            if symbolic_orphan:
                witness = session.orphans().witness
                sends = {
                    event.send_id: event for event in session.trace.sends()
                }
                for send_id in witness.orphan_sends:
                    send = sends[send_id]
                    assert (
                        send.thread,
                        send.thread_index,
                    ) in explicit.orphan_messages, program.name

            deadlocks += symbolic_deadlock
            orphans += symbolic_orphan
        # The corpus must be a genuine mix, or the agreement is vacuous.
        assert 0 < deadlocks < CORPUS_SIZE
        assert 0 < orphans < CORPUS_SIZE

    def test_deadlock_witnesses_replay_to_blocked_runs(self):
        replayed = 0
        for program, trace in _corpus(count=60):
            if any(not op.blocking for op in trace.receive_operations()):
                continue  # witness replay supports blocking receives only
            session = VerificationSession(trace, options=OPTIONS)
            result = session.deadlocks()
            if result.verdict is not Verdict.VIOLATION:
                continue
            run = replay_deadlock_witness(program, result.problem, result.witness)
            assert run.deadlocked, program.name
            assert run.result.blocked_tasks, program.name
            replayed += 1
        assert replayed >= 10  # the check must not be vacuous
