"""End-to-end tests of the symbolic verifier, witness decoding and replay.

These are the headline results of the reproduction: the verifier must admit
both Figure 4 behaviours of the paper's Figure 1 program, find the assertion
violation that requires the delayed-message behaviour (4b), and agree with
exhaustive explicit-state exploration on every small workload.
"""

import pytest

from repro.baselines.explicit import ExplicitStateExplorer, canonical_matching
from repro.encoding import EncoderOptions, ReceiveValueProperty
from repro.program import run_program
from repro.smt import Eq, IntVal, Ne
from repro.verification import SymbolicVerifier, Verdict, replay_witness, witness_schedule
from repro.utils.errors import EncodingError
from repro.workloads import (
    X_VALUE,
    Y_VALUE,
    figure1_program,
    figure4a_pairing,
    figure4b_pairing,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    scatter_gather,
    token_ring,
)


@pytest.fixture(scope="module")
def verifier():
    return SymbolicVerifier()


class TestFigure1:
    """The paper's running example (Figures 1 and 4)."""

    def test_assert_a_is_y_is_violable(self, verifier):
        """MCC and Elwakil miss this bug; the paper's encoding must find it."""
        result = verifier.verify_program(figure1_program(assert_a_is_y=True), seed=0)
        assert result.verdict is Verdict.VIOLATION
        pairing = result.witness.pairing_description(result.problem)
        assert pairing == figure4b_pairing() or pairing["recv(A)"].startswith(
            f"send({X_VALUE})"
        )

    def test_assert_a_is_x_is_violable(self, verifier):
        result = verifier.verify_program(figure1_program(assert_a_is_x=True), seed=0)
        assert result.verdict is Verdict.VIOLATION
        assert result.witness.pairing_description(result.problem)["recv(A)"].startswith(
            f"send({Y_VALUE})"
        )

    def test_both_figure4_pairings_admitted(self, verifier):
        run = run_program(figure1_program(), seed=0)
        pairings = verifier.enumerate_pairings(run.trace)
        descriptions = []
        problem = verifier.encoder.encode(run.trace, properties=[])
        from repro.encoding.witness import Witness

        for matching in pairings:
            witness = Witness(matching=matching)
            descriptions.append(witness.pairing_description(problem))
        assert figure4a_pairing() in descriptions
        assert figure4b_pairing() in descriptions
        assert len(descriptions) == 2

    def test_recv_c_always_gets_z(self, verifier):
        """recv(C) can only obtain Z, so asserting that is SAFE."""
        run = run_program(figure1_program(), seed=0)
        recv_c = next(
            op.recv_id for op in run.trace.receive_operations() if op.thread == "t1"
        )
        prop = ReceiveValueProperty(recv_c, lambda v: Eq(v, IntVal(30)), name="C-is-Z")
        result = verifier.verify_trace(run.trace, properties=[prop])
        assert result.verdict is Verdict.SAFE

    def test_verdict_independent_of_recording_seed(self, verifier):
        verdicts = set()
        for seed in range(4):
            result = verifier.verify_program(
                figure1_program(assert_a_is_y=True), seed=seed
            )
            verdicts.add(result.verdict)
        assert verdicts == {Verdict.VIOLATION}

    def test_pairing_reachability_queries(self, verifier):
        run = run_program(figure1_program(), seed=0)
        trace = run.trace
        sends_by_value = {s.payload_value: s.send_id for s in trace.sends()}
        recv_by_var = {
            getattr(trace[op.issue_event_id], "target_variable", None): op.recv_id
            for op in trace.receive_operations()
        }
        # A <- Y (figure 4a) and A <- X (figure 4b) are both reachable.
        assert verifier.is_pairing_reachable(
            trace, {recv_by_var["A"]: sends_by_value[Y_VALUE]}
        )
        assert verifier.is_pairing_reachable(
            trace, {recv_by_var["A"]: sends_by_value[X_VALUE]}
        )
        # C <- X is not (X targets t0's endpoint).
        assert not verifier.is_pairing_reachable(
            trace, {recv_by_var["C"]: sends_by_value[X_VALUE]}
        )


class TestSafePrograms:
    @pytest.mark.parametrize(
        "program",
        [pipeline(4), scatter_gather(3), token_ring(3)],
        ids=lambda p: p.name,
    )
    def test_schedule_independent_assertions_are_safe(self, verifier, program):
        result = verifier.verify_program(program, seed=0)
        assert result.verdict is Verdict.SAFE

    def test_no_properties_is_trivially_safe(self, verifier):
        result = verifier.verify_program(figure1_program(), seed=0)
        assert result.verdict is Verdict.SAFE
        assert result.witness is None

    def test_feasibility_check(self, verifier):
        run = run_program(figure1_program(), seed=0)
        assert verifier.feasibility(run.trace)


class TestRacyPrograms:
    def test_racy_fanin_violation_found(self, verifier):
        result = verifier.verify_program(
            racy_fanin(3, assert_first_from_sender0=True), seed=0
        )
        assert result.verdict is Verdict.VIOLATION

    def test_nonblocking_fanin_violation_found(self, verifier):
        result = verifier.verify_program(nonblocking_fanin(3), seed=0)
        assert result.verdict is Verdict.VIOLATION

    def test_scatter_gather_order_assertion_violable(self, verifier):
        result = verifier.verify_program(scatter_gather(3, assert_order=True), seed=0)
        assert result.verdict is Verdict.VIOLATION

    def test_enumerated_pairings_match_ground_truth(self, verifier):
        """Symbolic pairings == pairings reached by exhaustive exploration."""
        program = racy_fanin(3)
        run = run_program(program, seed=0)
        symbolic = {
            canonical_matching(run.trace, m)
            for m in verifier.enumerate_pairings(run.trace)
        }
        explicit = ExplicitStateExplorer(program).explore().matchings
        assert symbolic == explicit
        assert len(symbolic) == 6

    def test_enumerate_pairings_limit(self, verifier):
        run = run_program(racy_fanin(3), seed=0)
        assert len(verifier.enumerate_pairings(run.trace, limit=2)) == 2


class TestWitnessReplay:
    def test_witness_replays_to_concrete_violation(self, verifier):
        program = figure1_program(assert_a_is_y=True)
        result = verifier.verify_program(program, seed=0)
        assert result.verdict is Verdict.VIOLATION
        outcome = replay_witness(program, result.problem, result.witness)
        assert outcome.values_match
        assert outcome.reproduced_violation
        assert any(f.label == "A-received-Y" for f in outcome.run.assertion_failures)

    def test_witness_replay_racy_fanin(self, verifier):
        program = racy_fanin(3, assert_first_from_sender0=True)
        result = verifier.verify_program(program, seed=1)
        outcome = replay_witness(program, result.problem, result.witness)
        assert outcome.values_match
        assert outcome.reproduced_violation

    def test_replay_rejects_nonblocking_traces(self, verifier):
        program = nonblocking_fanin(2)
        result = verifier.verify_program(program, seed=0)
        assert result.verdict is Verdict.VIOLATION
        with pytest.raises(EncodingError):
            witness_schedule(result.problem, result.witness)

    def test_deadlocked_recording_run_is_rejected(self, verifier):
        from repro.program import ProgramBuilder

        builder = ProgramBuilder("stuck")
        builder.thread("a").recv("x")
        with pytest.raises(EncodingError):
            verifier.verify_program(builder.build(), seed=0)


class TestResultReporting:
    def test_describe_contains_key_information(self, verifier):
        result = verifier.verify_program(figure1_program(assert_a_is_y=True), seed=0)
        text = result.describe()
        assert "violation" in text
        assert "matching" in text
        assert "clk=" in text

    def test_statistics_populated(self, verifier):
        result = verifier.verify_program(figure1_program(assert_a_is_y=True), seed=0)
        assert result.solver_statistics["atoms"] > 0
        assert result.solve_seconds >= 0.0
        assert result.encode_seconds >= 0.0
