"""Deadlock/orphan verification through the session, batch, cache and CLI."""

import json
import os

import pytest

from repro.encoding import EncoderOptions
from repro.program.builder import ProgramBuilder
from repro.program.ast import C
from repro.program.statictrace import static_trace
from repro.program.interpreter import run_program
from repro.utils.errors import CacheSchemaError, EncodingError, ProgramError
from repro.verification import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    Verdict,
    VerificationSession,
    make_cache_key,
    resolve_mode,
    verify_many,
)
from repro.verification.cli import main
from repro.verification.replay import replay_deadlock_witness
from repro.workloads import (
    circular_wait,
    figure1_program,
    pipeline,
    starved_fanin,
)


class TestSessionModes:
    def test_deadlocks_on_safe_program(self):
        session = VerificationSession.from_program(figure1_program())
        result = session.deadlocks()
        assert result.verdict is Verdict.SAFE
        # Cached lane: repeated calls return the same object.
        assert session.deadlocks() is result

    def test_deadlocks_on_circular_wait(self):
        session = VerificationSession.from_program(
            circular_wait(2), on_deadlock="static"
        )
        result = session.deadlocks()
        assert result.verdict is Verdict.VIOLATION
        assert result.witness.unmatched_receives
        assert "never completes" in result.describe()

    def test_verdict_mode_dispatch(self):
        session = VerificationSession.from_program(
            circular_wait(2), on_deadlock="static"
        )
        assert session.verdict(mode="deadlock").verdict is Verdict.VIOLATION
        assert session.verdict(mode="orphan").verdict is Verdict.SAFE
        with pytest.raises(EncodingError, match="mode"):
            session.verdict(mode="liveness")

    def test_orphans_query_shares_the_session_backend(self):
        builder = ProgramBuilder("lost")
        builder.thread("recv").recv("a")
        builder.thread("s0").send("recv", C(1))
        builder.thread("s1").send("recv", C(2))
        session = VerificationSession.from_program(builder.build())
        result = session.orphans()
        assert result.verdict is Verdict.VIOLATION
        assert len(result.witness.orphan_sends) == 1
        assert session.orphans() is result
        # The safety verdict is unaffected by the assumed orphan query.
        assert session.verdict().verdict is Verdict.SAFE

    def test_from_program_deadlock_fallbacks(self):
        with pytest.raises(EncodingError, match="deadlocked"):
            VerificationSession.from_program(circular_wait(2))
        session = VerificationSession.from_program(
            circular_wait(2), on_deadlock="static"
        )
        assert len(session.trace) == 4  # 2 receives + 2 (never-run) sends
        with pytest.raises(EncodingError, match="on_deadlock"):
            VerificationSession.from_program(circular_wait(2), on_deadlock="oops")

    def test_deadlock_witness_replays_to_a_blocked_run(self):
        program = starved_fanin(2, extra_receives=1)
        session = VerificationSession.from_program(
            program,
            options=EncoderOptions(enforce_pair_fifo=True),
            on_deadlock="static",
        )
        result = session.deadlocks()
        assert result.verdict is Verdict.VIOLATION
        run = replay_deadlock_witness(program, result.problem, result.witness)
        assert run.deadlocked
        assert run.result.blocked_tasks == ["recv"]


class TestPartialModeSafetyGuards:
    def test_unexecuted_assertions_cannot_violate(self):
        # A receive nobody sends to, followed by an always-false assertion:
        # the assertion never runs in any execution, so even under the
        # partial-match encoding the safety verdict must stay SAFE (the
        # deadlock is reported by the deadlock property, not the assertion).
        from repro.program.ast import V

        builder = ProgramBuilder("stuck_assert")
        thread = builder.thread("recv")
        thread.recv("x")
        thread.assertion(V("x") < C(0), label="never-runs")
        trace = static_trace(builder.build())
        session = VerificationSession(
            trace, options=EncoderOptions(partial_matches=True)
        )
        assert session.verdict().verdict is Verdict.SAFE
        assert session.deadlocks().verdict is Verdict.VIOLATION

    def test_partial_witness_interleaving_is_the_executed_prefix(self):
        session = VerificationSession.from_program(
            circular_wait(2), on_deadlock="static"
        )
        witness = session.deadlocks().witness
        # Nothing executes in a pure circular wait: the receives are the
        # blocking frontier (never completing) and the sends sit after them.
        assert witness.event_order == []
        text = session.deadlocks().describe()
        assert "SendEvent" not in text

    def test_base_mode_safety_witness_has_no_deadlock_section(self):
        from repro.program.ast import V

        builder = ProgramBuilder("surplus")
        thread = builder.thread("recv")
        thread.recv("a")
        thread.assertion(V("a").eq(C(1)), label="racy")
        builder.thread("s0").send("recv", C(1))
        builder.thread("s1").send("recv", C(2))
        session = VerificationSession.from_program(builder.build())
        result = session.verdict()
        assert result.verdict is Verdict.VIOLATION
        text = result.describe()
        assert "stuck endpoints" not in text
        assert "sends never received in this execution" in text


class TestResolveMode:
    def test_safety_mode_is_passthrough(self):
        options = EncoderOptions(enforce_pair_fifo=True)
        assert resolve_mode("safety", options, None) == (options, None)

    def test_deadlock_mode_enables_partial_matches(self):
        options, properties = resolve_mode("deadlock", None, None)
        assert options.partial_matches
        (prop,) = properties
        assert prop.name == "deadlock-free"

    def test_mode_and_properties_are_mutually_exclusive(self):
        with pytest.raises(EncodingError, match="property set"):
            resolve_mode("deadlock", None, [])

    def test_unknown_mode(self):
        with pytest.raises(EncodingError, match="unknown verification mode"):
            resolve_mode("liveness", None, None)


class TestBatchModes:
    PROGRAMS = [circular_wait(2), pipeline(3), starved_fanin(2, extra_receives=1)]
    EXPECTED = [Verdict.VIOLATION, Verdict.SAFE, Verdict.VIOLATION]

    def test_serial_deadlock_batch(self):
        results = verify_many(self.PROGRAMS, mode="deadlock")
        assert [r.verdict for r in results] == self.EXPECTED

    def test_parallel_deadlock_batch_agrees_with_serial(self):
        results = verify_many(self.PROGRAMS, mode="deadlock", jobs=2)
        assert [r.verdict for r in results] == self.EXPECTED

    def test_orphan_batch(self):
        builder = ProgramBuilder("lost")
        builder.thread("recv").recv("a")
        builder.thread("s0").send("recv", C(1))
        builder.thread("s1").send("recv", C(2))
        results = verify_many([builder.build(), pipeline(3)], mode="orphan")
        assert [r.verdict for r in results] == [Verdict.VIOLATION, Verdict.SAFE]


class TestCacheModeSeparation:
    def test_safety_and_deadlock_answers_never_collide(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        program = figure1_program(assert_a_is_y=True)
        safety = verify_many([program], cache=cache, mode="safety")
        deadlock = verify_many([program], cache=cache, mode="deadlock")
        assert safety[0].verdict is Verdict.VIOLATION
        assert deadlock[0].verdict is Verdict.SAFE
        assert len(cache) == 2
        # Replays of both questions hit their own entries.
        assert verify_many([program], cache=cache, mode="safety")[0].from_cache
        assert verify_many([program], cache=cache, mode="deadlock")[0].from_cache

    def test_cached_deadlock_witness_translates_across_interleavings(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        program = starved_fanin(2, extra_receives=1)
        trace = static_trace(program)
        first = verify_many([trace], cache=cache, mode="deadlock")
        assert first[0].verdict is Verdict.VIOLATION
        # A different-but-fingerprint-equal numbering must hit and carry the
        # unmatched-receive information across the renaming.
        hit = verify_many([static_trace(program)], cache=cache, mode="deadlock")
        assert hit[0].from_cache
        assert hit[0].witness.unmatched_receives == first[0].witness.unmatched_receives

    def test_key_embeds_mode(self):
        trace = static_trace(pipeline(3))
        safety_key = make_cache_key(trace, mode="safety")
        deadlock_key = make_cache_key(trace, mode="deadlock")
        assert safety_key != deadlock_key
        assert safety_key.digest() != deadlock_key.digest()

    def test_deadlock_entries_dedup_across_interleavings(self, tmp_path):
        # DeadlockProperty is trace-global (fixed cache signature): two
        # recordings of the same program under different seeds — which
        # renumber every recv/send id — must share one deadlock entry.
        cache = ResultCache(directory=str(tmp_path))
        program = figure1_program()
        first = run_program(program, seed=0).trace
        second = run_program(program, seed=3).trace
        assert verify_many([first], cache=cache, mode="deadlock")[0].verdict is (
            Verdict.SAFE
        )
        hit = verify_many([second], cache=cache, mode="deadlock")[0]
        assert hit.from_cache
        assert len(cache) == 1


class TestCacheSchema:
    def test_fresh_store_is_stamped(self, tmp_path):
        ResultCache(directory=str(tmp_path))
        with open(tmp_path / "_schema.json") as handle:
            marker = json.load(handle)
        assert marker["schema"] == CACHE_SCHEMA_VERSION
        assert "mode" in marker["key_fields"]

    def test_same_schema_store_reopens(self, tmp_path):
        ResultCache(directory=str(tmp_path))
        ResultCache(directory=str(tmp_path))  # no error

    def test_foreign_schema_store_is_refused(self, tmp_path):
        with open(tmp_path / "_schema.json", "w") as handle:
            json.dump({"schema": 1, "key_fields": ["fingerprint"]}, handle)
        with pytest.raises(CacheSchemaError, match="schema 1"):
            ResultCache(directory=str(tmp_path))

    def test_unversioned_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        trace = run_program(pipeline(2), seed=0).trace
        verify_many([trace], cache=cache)
        (entry_path,) = [
            tmp_path / name
            for name in os.listdir(tmp_path)
            if name.endswith(".json") and not name.startswith("_")
        ]
        entry = json.loads(entry_path.read_text())
        del entry["schema"]  # simulate a pre-versioning store entry
        entry_path.write_text(json.dumps(entry))
        fresh = ResultCache(directory=str(tmp_path))
        assert fresh.lookup(make_cache_key(trace), trace) is None


class TestStaticTrace:
    def test_rejects_branchy_programs(self):
        builder = ProgramBuilder("branchy")
        thread = builder.thread("t")
        thread.recv("x")
        thread.if_(C(1).eq(C(1)), then=[], orelse=[])
        with pytest.raises(ProgramError, match="branch-free"):
            static_trace(builder.build())

    def test_fingerprint_equals_recorded_run(self):
        from repro.trace.fingerprint import trace_fingerprint

        for program in (figure1_program(assert_a_is_y=True), pipeline(4)):
            recorded = run_program(program, seed=5).trace
            assert trace_fingerprint(static_trace(program)) == trace_fingerprint(
                recorded
            )


class TestCli:
    def test_check_deadlock_on_deadlocking_workload(self, capsys):
        code = main(["--workload", "circular_wait", "--check-deadlock"])
        out = capsys.readouterr().out
        assert code == 1
        assert "never completes" in out

    def test_check_deadlock_on_safe_workload(self, capsys):
        code = main(["--workload", "pipeline", "--check-deadlock"])
        assert code == 0
        assert "verdict: safe" in capsys.readouterr().out

    def test_batch_check_deadlock(self, capsys):
        code = main(
            ["--workload", "starved_fanin", "--check-deadlock", "--repeat", "3"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict=violation" in out

    def test_batch_without_flag_refuses_deadlocked_recording(self, capsys):
        code = main(["--workload", "circular_wait", "--repeat", "2"])
        assert code == 2
        assert "--check-deadlock" in capsys.readouterr().err
