"""Tests for the ``mcapi-verify`` command-line interface."""

import pytest

from repro.verification.cli import build_parser, main


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "figure1"
        assert args.seed == 0
        assert args.match_pairs == "endpoint"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "nope"])


class TestMain:
    def test_figure1_violation_exit_code(self, capsys):
        code = main(["--workload", "figure1", "--property", "a-is-y"])
        captured = capsys.readouterr().out
        assert code == 1
        assert "violation" in captured
        assert "matching" in captured

    def test_safe_workload_exit_code(self, capsys):
        code = main(["--workload", "pipeline", "--senders", "3"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "safe" in captured

    def test_show_trace_and_smt(self, capsys):
        code = main(
            [
                "--workload",
                "figure1",
                "--property",
                "a-is-y",
                "--show-trace",
                "--show-smt",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 1
        assert "SendEvent" in captured
        assert "(set-logic" in captured

    def test_precise_match_pairs_option(self, capsys):
        code = main(
            ["--workload", "figure1", "--property", "a-is-y", "--match-pairs", "precise"]
        )
        assert code == 1

    def test_racy_fanin_workload(self, capsys):
        code = main(["--workload", "racy_fanin", "--senders", "2"])
        assert code == 1  # the first-from-sender0 assertion is violable

    def test_pair_fifo_flag(self, capsys):
        code = main(["--workload", "figure1", "--property", "a-is-y", "--pair-fifo"])
        assert code == 1
