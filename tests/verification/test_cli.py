"""Tests for the ``mcapi-verify`` command-line interface."""

import pytest

from repro.verification.cli import build_parser, main


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "figure1"
        assert args.seed == 0
        assert args.match_pairs == "endpoint"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "nope"])


class TestMain:
    def test_figure1_violation_exit_code(self, capsys):
        code = main(["--workload", "figure1", "--property", "a-is-y"])
        captured = capsys.readouterr().out
        assert code == 1
        assert "violation" in captured
        assert "matching" in captured

    def test_safe_workload_exit_code(self, capsys):
        code = main(["--workload", "pipeline", "--senders", "3"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "safe" in captured

    def test_show_trace_and_smt(self, capsys):
        code = main(
            [
                "--workload",
                "figure1",
                "--property",
                "a-is-y",
                "--show-trace",
                "--show-smt",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 1
        assert "SendEvent" in captured
        assert "(set-logic" in captured

    def test_precise_match_pairs_option(self, capsys):
        code = main(
            ["--workload", "figure1", "--property", "a-is-y", "--match-pairs", "precise"]
        )
        assert code == 1

    def test_racy_fanin_workload(self, capsys):
        code = main(["--workload", "racy_fanin", "--senders", "2"])
        assert code == 1  # the first-from-sender0 assertion is violable

    def test_pair_fifo_flag(self, capsys):
        code = main(["--workload", "figure1", "--property", "a-is-y", "--pair-fifo"])
        assert code == 1


class TestBatchMode:
    def test_repeat_with_jobs_dedups_and_reports(self, capsys):
        code = main(["--workload", "racy_fanin", "--repeat", "4", "--jobs", "2"])
        captured = capsys.readouterr().out
        assert code == 1  # the racy assertion is violable
        assert "batch: 4 traces, 1 solved" in captured
        assert captured.count("verdict=violation") == 4

    def test_safe_batch_exit_code(self, capsys):
        code = main(["--workload", "pipeline", "--repeat", "3", "--jobs", "2"])
        captured = capsys.readouterr().out
        assert code == 0
        assert captured.count("verdict=safe") == 3

    def test_cache_dir_answers_second_run_without_solving(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "verdicts")
        args = ["--workload", "pipeline", "--repeat", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        captured = capsys.readouterr().out
        assert "2 traces, 0 solved" in captured

    def test_portfolio_flag_without_external_solver(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SMT_SOLVER", raising=False)
        code = main(["--workload", "pipeline", "--portfolio"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "verdict=safe" in captured

    def test_portfolio_theory_reports_winning_mode(self, capsys):
        code = main(["--workload", "pipeline", "--portfolio-theory"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "dpllt[online]" in captured or "dpllt[offline]" in captured

    def test_portfolio_and_portfolio_theory_conflict(self, capsys):
        code = main(
            ["--workload", "pipeline", "--portfolio", "--portfolio-theory"]
        )
        assert code == 2
        assert "pick one" in capsys.readouterr().err

    def test_solver_knob_flags(self, capsys):
        code = main(
            [
                "--workload",
                "racy_fanin",
                "--stats",
                "--no-reduce-db",
                "--no-idl-propagation",
                "--theory-bump",
                "0",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 1  # racy fan-in assertion is violated
        assert "reduce_db_rounds = 0" in captured
        assert "theory_propagations_idl = 0" in captured

    def test_solver_knobs_conflict_with_portfolio(self, capsys):
        code = main(
            ["--workload", "pipeline", "--portfolio-theory", "--no-reduce-db"]
        )
        assert code == 2
        assert "cannot be combined with a portfolio" in capsys.readouterr().err

    def test_solver_knobs_travel_into_batch_mode(self, capsys):
        code = main(
            ["--workload", "pipeline", "--repeat", "2", "--no-reduce-db"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "verdict=safe" in captured

    def test_stats_include_hot_path_counters(self, capsys):
        code = main(["--workload", "racy_fanin", "--stats"])
        captured = capsys.readouterr().out
        assert code == 1
        assert "reduce_db_rounds" in captured
        assert "max_live_learned" in captured
        assert "theory_propagations_idl" in captured
        assert "theory_propagations_euf" in captured


class TestServerUnavailable:
    """``--server`` pointed at nothing must fail fast with EX_UNAVAILABLE."""

    def _unused_address(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"127.0.0.1:{port}"

    def test_connection_refused_exits_69(self, capsys):
        code = main(
            ["--server", self._unused_address(), "--workload", "figure1"]
        )
        captured = capsys.readouterr()
        assert code == 69  # EX_UNAVAILABLE
        error_lines = [line for line in captured.err.splitlines() if line]
        assert len(error_lines) == 1
        assert "cannot reach verification service" in error_lines[0]
        assert "mcapi-verify serve" in error_lines[0]

    def test_shutdown_of_missing_daemon_exits_69(self, capsys):
        code = main(["shutdown", "--server", self._unused_address()])
        assert code == 69
        assert "cannot reach" in capsys.readouterr().err
