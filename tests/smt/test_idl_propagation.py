"""Tests for IDL bound propagation (the theory-propagation lane of
:class:`~repro.smt.theory.idl.IncrementalDifferenceLogic`).

Two layers:

* **unit** — registered difference atoms entailed by shortest paths are
  emitted exactly once, their lazy explanations name only earlier trail
  literals and are *logically entailed* (validated by re-checking the
  explanation plus the negated atom constraint UNSAT on the batch
  solver), and retraction prunes pending and reported propagations;
* **engine differential** — ``idl_propagation=True`` and ``False`` decide
  identically on the mixed-theory corpus, with the split statistics
  (``theory_propagations_idl``) nonzero only when the lane is on.
"""

import random

import pytest

from test_online_offline import _random_assertions

from repro.smt.dpllt import CheckResult, DpllTEngine
from repro.smt.linear import LinearExpr, LinearLe
from repro.smt.terms import IntVal, IntVar, Le, Lt, Or
from repro.smt.theory.idl import (
    DifferenceLogicSolver,
    IncrementalDifferenceLogic,
    atom_edge,
)
from repro.utils.errors import SolverError


def _diff(x, y, bound):
    """Constraint ``x - y <= bound``."""
    return LinearLe(LinearExpr.from_dict({x: 1, y: -1}), bound)


def _negated(constraint):
    return constraint.negated()


def _assert_entailed(explanation_constraints, constraint):
    """``explanation /\\ not constraint`` must be UNSAT on the batch solver."""
    batch = DifferenceLogicSolver()
    batch.assert_all(list(explanation_constraints) + [_negated(constraint)])
    assert not batch.check().satisfiable


class TestUnitPropagation:
    def _chain_solver(self):
        idl = IncrementalDifferenceLogic()
        # atom 10: a - c <= 0  /  c - a <= -1
        idl.register_atom(10, _diff("a", "c", 0), _diff("c", "a", -1))
        # atom 11: c - a <= -3  /  a - c <= 2
        idl.register_atom(11, _diff("c", "a", -3), _diff("a", "c", 2))
        return idl

    def test_entailed_atoms_are_emitted_with_valid_explanations(self):
        idl = self._chain_solver()
        assert idl.assert_lit(1, [_diff("a", "b", -1)]) is None
        assert idl.assert_lit(2, [_diff("b", "c", -1)]) is None
        props = idl.take_propagations()
        # a - c <= -2 follows: atom 10 positively, atom 11 negatively.
        assert sorted(props) == [-11, 10]
        constraint_of = {
            10: _diff("a", "c", 0),
            -11: _diff("a", "c", 2),
        }
        trail = {1: _diff("a", "b", -1), 2: _diff("b", "c", -1)}
        for lit in props:
            explanation = idl.explain_entailed(lit)
            assert explanation, lit
            assert set(explanation) <= set(trail)
            _assert_entailed([trail[e] for e in explanation], constraint_of[lit])

    def test_propagations_are_not_reemitted(self):
        idl = self._chain_solver()
        idl.assert_lit(1, [_diff("a", "b", -1)])
        idl.assert_lit(2, [_diff("b", "c", -1)])
        first = idl.take_propagations()
        assert first
        idl.assert_lit(3, [_diff("d", "a", 0)])
        assert not (set(idl.take_propagations()) & set(first))

    def test_asserted_atoms_are_skipped(self):
        idl = IncrementalDifferenceLogic()
        idl.register_atom(10, _diff("a", "c", 0), _diff("c", "a", -1))
        assert idl.assert_lit(10, [_diff("a", "c", 0)]) is None
        idl.assert_lit(1, [_diff("a", "b", -1)])
        idl.assert_lit(2, [_diff("b", "c", -1)])
        assert 10 not in idl.take_propagations()

    def test_retraction_prunes_pending_and_reported(self):
        idl = self._chain_solver()
        idl.assert_lit(1, [_diff("a", "b", -1)])
        idl.assert_lit(2, [_diff("b", "c", -1)])
        idl.retract_to(1)  # entailment basis gone before it was drained
        assert idl.take_propagations() == []
        # Reported propagations above the surviving prefix die too.
        idl.assert_lit(3, [_diff("b", "c", -1)])
        props = idl.take_propagations()
        assert props
        idl.retract_to(1)
        for lit in props:
            with pytest.raises(SolverError):
                idl.explain_entailed(lit)

    def test_conflicting_assert_leaves_feasible_potentials(self):
        """A vetoed assert must restore the potential function — lazy
        explanations (Dijkstra over reduced costs) depend on it."""
        idl = self._chain_solver()
        idl.assert_lit(1, [_diff("a", "b", -2)])
        idl.assert_lit(2, [_diff("b", "c", -2)])
        props = idl.take_propagations()
        assert 10 in props
        conflict = idl.assert_lit(3, [_diff("c", "b", -1)])  # cycle with 2
        assert conflict is not None
        # Explanation of the earlier propagation still materialises.
        explanation = idl.explain_entailed(10)
        assert explanation == [1, 2]
        pot = idl._pot
        for edge in idl._edges[: idl._frames[-1].edges_before]:
            assert pot[edge.src] + edge.weight >= pot[edge.dst]

    def test_atom_edge_shapes(self):
        assert atom_edge(_diff("x", "y", 3)) == ("y", "x", 3)
        upper = LinearLe(LinearExpr.from_dict({"x": 1}), 7)
        assert atom_edge(upper) == ("$zero", "x", 7)
        constant = LinearLe(LinearExpr.from_dict({}), 1)
        assert atom_edge(constant) is None
        non_diff = LinearLe(LinearExpr.from_dict({"x": 2, "y": -1}), 0)
        assert atom_edge(non_diff) is None

    def test_register_atom_rejects_edgeless_atoms(self):
        idl = IncrementalDifferenceLogic()
        constant = LinearLe(LinearExpr.from_dict({}), 1)
        assert idl.register_atom(5, constant, None) is False
        assert idl.num_registered_atoms == 0
        assert idl.register_atom(6, _diff("x", "y", 0), constant) is True
        assert idl.num_registered_atoms == 1


class TestRandomizedStreams:
    def test_every_propagation_explanation_is_entailed(self):
        """Fuzz: random difference streams with random retractions; every
        emitted literal's explanation must entail its phase constraint and
        reference only literals asserted before the emission."""
        names = list("abcdef")
        for seed in range(40):
            rng = random.Random(31_000 + seed)
            idl = IncrementalDifferenceLogic()
            atoms = {}
            for var in range(100, 112):
                x, y = rng.sample(names, 2)
                bound = rng.randint(-3, 3)
                positive = _diff(x, y, bound)
                negative = positive.negated()
                if idl.register_atom(var, positive, negative):
                    atoms[var] = positive
            trail = []  # (lit, constraint)
            next_lit = 1
            for _ in range(30):
                if trail and rng.random() < 0.25:
                    keep = rng.randint(0, len(trail))
                    idl.retract_to(keep)
                    del trail[keep:]
                    continue
                x, y = rng.sample(names, 2)
                constraint = _diff(x, y, rng.randint(-2, 4))
                lit = next_lit
                next_lit += 1
                conflict = idl.assert_lit(lit, [constraint])
                trail.append((lit, constraint))
                if conflict is not None:
                    idl.retract_to(len(trail) - 1)
                    trail.pop()
                    continue
                by_lit = dict(trail)
                for plit in idl.take_propagations():
                    constraint_of = atoms[abs(plit)]
                    if plit < 0:
                        constraint_of = constraint_of.negated()
                    explanation = idl.explain_entailed(plit)
                    assert set(explanation) <= set(by_lit), (seed, plit)
                    _assert_entailed(
                        [by_lit[e] for e in explanation], constraint_of
                    )


class TestEngineDifferential:
    @pytest.mark.parametrize("chunk", range(5))
    def test_propagation_on_off_verdicts_agree(self, chunk):
        """Propagation is a pure optimisation: verdicts (and model
        validity) are identical with the lane on and off."""
        per_chunk = 30
        for index in range(per_chunk):
            seed = chunk * per_chunk + index
            rng = random.Random(1_000 + seed)  # shared corpus seeds
            assertions, has_apps = _random_assertions(rng)

            on = DpllTEngine(assertions, idl_propagation=True)
            off = DpllTEngine(assertions, idl_propagation=False)
            verdict_on = on.check()
            verdict_off = off.check()
            assert verdict_on == verdict_off, f"seed {seed}"
            assert verdict_on is not CheckResult.UNKNOWN
            assert off.stats.theory_propagations_idl == 0
            if verdict_on is CheckResult.SAT and not has_apps:
                model = on.model()
                for assertion in assertions:
                    assert model.satisfies(assertion), f"seed {seed}"

    def test_ordering_conflicts_become_propagations(self):
        """The ROADMAP claim in miniature: on an ordering workload the
        propagation lane fires and strictly cuts theory conflicts."""
        clocks = [IntVar(f"t{i}") for i in range(5)]
        terms = []
        for i in range(5):
            for j in range(i + 1, 5):
                terms.append(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
        for clock in clocks:
            terms.append(Le(IntVal(0), clock))
            terms.append(Le(clock, IntVal(3)))

        on = DpllTEngine(terms, idl_propagation=True)
        off = DpllTEngine(terms, idl_propagation=False)
        assert on.check() is CheckResult.UNSAT
        assert off.check() is CheckResult.UNSAT
        assert on.stats.theory_propagations_idl > 0
        assert on.stats.theory_conflicts < off.stats.theory_conflicts
        # The aggregate counter covers both lanes consistently.
        assert on.stats.theory_propagations >= 0
        assert "theory_propagations_idl" in on.stats.as_dict()
