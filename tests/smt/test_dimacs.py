"""DIMACS CNF import (``repro.smt.dimacs``) and its CLI lane."""

import os

import pytest

from repro.smt.dimacs import load_dimacs, parse_dimacs
from repro.smt.sat import SatResult
from repro.utils.errors import SolverError
from repro.verification.cli import main

DATA = os.path.join(os.path.dirname(__file__), "data")


class TestParser:
    def test_parses_fixture_with_dialect_corners(self):
        problem = load_dimacs(os.path.join(DATA, "simple_sat.cnf"))
        assert problem.num_vars == 5
        assert problem.clauses == [
            [1, -2],
            [2, 3],
            [-3, 4],
            [-1, -4, 5],
            [-5, 2],
            [4, 5],
        ]

    def test_comments_and_blank_lines_ignored(self):
        problem = parse_dimacs("c hello\n\np cnf 2 1\nc mid\n1 2 0\n")
        assert problem.num_vars == 2
        assert problem.clauses == [[1, 2]]

    def test_final_clause_without_terminator_tolerated(self):
        problem = parse_dimacs("p cnf 3 2\n1 2 0\n-3 1\n")
        assert problem.clauses == [[1, 2], [-3, 1]]

    def test_missing_problem_line_rejected(self):
        with pytest.raises(SolverError, match="problem line"):
            parse_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(SolverError, match="problem line"):
            parse_dimacs("p sat 3 2\n1 2 0\n")

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(SolverError, match="exceeds"):
            parse_dimacs("p cnf 2 1\n1 3 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(SolverError, match="declares 2 clauses"):
            parse_dimacs("p cnf 2 2\n1 2 0\n")

    def test_missing_file_reports_path(self):
        with pytest.raises(SolverError, match="no/such/file.cnf"):
            load_dimacs("no/such/file.cnf")


class TestSolving:
    def test_sat_fixture_solves_and_models(self):
        problem = load_dimacs(os.path.join(DATA, "simple_sat.cnf"))
        solver = problem.solver()
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        for clause in problem.clauses:
            assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    def test_pigeonhole_fixture_is_unsat(self):
        problem = load_dimacs(os.path.join(DATA, "php_3_2.cnf"))
        assert problem.solver().solve() is SatResult.UNSAT

    def test_solver_kwargs_forwarded(self):
        problem = load_dimacs(os.path.join(DATA, "php_3_2.cnf"))
        solver = problem.solver(reduce_db=True, reduce_base=1)
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.conflicts > 0


class TestCliLane:
    def test_sat_exit_code_and_model_line(self, capsys):
        code = main(["--dimacs", os.path.join(DATA, "simple_sat.cnf")])
        out = capsys.readouterr().out
        assert code == 10
        assert "s SATISFIABLE" in out
        model_line = next(l for l in out.splitlines() if l.startswith("v "))
        lits = [int(tok) for tok in model_line[2:].split()]
        assert lits[-1] == 0
        assignment = {abs(l): l > 0 for l in lits[:-1]}
        problem = load_dimacs(os.path.join(DATA, "simple_sat.cnf"))
        for clause in problem.clauses:
            assert any(assignment[abs(l)] == (l > 0) for l in clause)

    def test_unsat_exit_code(self, capsys):
        code = main(["--dimacs", os.path.join(DATA, "php_3_2.cnf")])
        assert code == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_stats_flag_prints_counters(self, capsys):
        code = main(["--dimacs", os.path.join(DATA, "php_3_2.cnf"), "--stats"])
        assert code == 20
        out = capsys.readouterr().out
        assert "c   conflicts" in out

    def test_missing_file_is_a_clean_error(self, capsys):
        code = main(["--dimacs", "no/such/file.cnf"])
        assert code == 2
        assert "dimacs error" in capsys.readouterr().err
