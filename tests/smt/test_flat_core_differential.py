"""Differential harness: flat-memory core vs the retained legacy core.

The arena rewrite of :class:`repro.smt.sat.SatSolver` promises *bit-identical
search behaviour* — not just equisatisfiability: the same decisions, the
same conflicts, the same learned clauses, the same models.  These tests
pin that promise three ways:

* **three-way random-CNF differential** — the native-kernel core, the
  pure-Python flat core (``use_kernel=False``) and the legacy
  clause-object core produce identical verdicts, models and search
  counters under maximally aggressive reduction (``reduce_base=1``);
  kernel and Python flat cores additionally keep *identical watch
  tables*, entry for entry;
* **incremental streams** — assumption batches and clauses added between
  ``solve`` calls agree across the cores after arbitrarily many
  reductions and compactions;
* **arena invariants** — after any reduction, reason-locked crefs still
  dereference to live records, no watch entry dangles, and every blocker
  is a literal of its clause;
* **DPLL(T) corpus** — the mixed-theory corpus shared with the
  online/offline suite yields identical verdicts, models and conflict
  counts when the engine's SAT core is swapped for the legacy one.
"""

import random

import pytest

from test_online_offline import _random_assertions

import repro.smt.dpllt as dpllt
from repro.smt.dpllt import CheckResult, DpllTEngine
from repro.smt.sat import SatResult, SatSolver
from repro.smt.satlegacy import LegacySatSolver

#: Counters that must agree across cores.  (arena_bytes / compactions are
#: flat-core-only by construction and excluded.)
_SHARED_COUNTERS = (
    "decisions",
    "propagations",
    "conflicts",
    "learned_clauses",
    "restarts",
    "max_decision_level",
    "reduce_db_rounds",
    "clauses_deleted",
    "max_live_learned",
)


def _random_clauses(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 4)
        clauses.append(
            [rng.randint(1, num_vars) * rng.choice((1, -1)) for _ in range(width)]
        )
    return clauses


def _cores(**kwargs):
    """(name, solver) per core; the kernel entry is present when it built."""
    cores = [
        ("legacy", LegacySatSolver(**kwargs)),
        ("flat-py", SatSolver(use_kernel=False, **kwargs)),
    ]
    flat = SatSolver(**kwargs)
    if flat.kernel_active:
        cores.append(("flat-c", flat))
    return cores


def _observables(solver):
    stats = solver.stats
    return {name: getattr(stats, name) for name in _SHARED_COUNTERS}


def _watch_table(solver):
    return {
        lit: solver.watch_entries(lit)
        for var in range(1, solver.num_vars + 1)
        for lit in (var, -var)
    }


def _check_arena_invariants(solver):
    live = set(solver.problem_refs()) | set(solver.learned_refs())
    # Reason-locked crefs survive compaction and stay dereferenceable.
    for lit in solver._trail:
        ref = solver.reason_ref(abs(lit))
        if ref > 0:
            assert solver.clause_info(ref)["size"] >= 1
            assert abs(lit) in {abs(l) for l in solver.clause_lits(ref)}
    # No dangling watch refs; blockers are in-clause.
    for var in range(1, solver.num_vars + 1):
        for lit in (var, -var):
            for ref, blocker in solver.watch_entries(lit):
                cref = -ref if ref < 0 else ref
                assert cref in live, f"dangling watch ref {ref} on {lit}"
                assert blocker in solver.clause_lits(cref)
    assert solver.arena_live_words() <= solver.arena_words


class TestRandomCnfThreeWay:
    @pytest.mark.parametrize("chunk", range(4))
    def test_verdicts_models_and_counters_identical(self, chunk):
        for index in range(25):
            seed = chunk * 25 + index
            rng = random.Random(5_000 + seed)
            num_vars = rng.randint(6, 16)
            clauses = _random_clauses(rng, num_vars, rng.randint(15, 70))
            results = []
            for name, solver in _cores(reduce_db=True, reduce_base=1):
                solver.ensure_vars(num_vars)
                solver.add_clauses(clauses)
                verdict = solver.solve()
                model = solver.model() if verdict is SatResult.SAT else None
                results.append((name, verdict, model, _observables(solver)))
            baseline = results[0]
            for other in results[1:]:
                assert other[1:] == baseline[1:], (
                    f"seed {seed}: {other[0]} diverged from {baseline[0]}"
                )

    def test_kernel_and_python_watch_tables_identical(self):
        flat = SatSolver(reduce_db=True, reduce_base=1)
        if not flat.kernel_active:
            pytest.skip("native kernel unavailable")
        pure = SatSolver(use_kernel=False, reduce_db=True, reduce_base=1)
        rng = random.Random(97)
        num_vars = 14
        clauses = _random_clauses(rng, num_vars, 60)
        for solver in (flat, pure):
            solver.ensure_vars(num_vars)
            solver.add_clauses(clauses)
            solver.solve()
        assert _watch_table(flat) == _watch_table(pure)


class TestIncrementalStreams:
    def test_assumption_streams_agree(self):
        for seed in range(10):
            rng = random.Random(9_000 + seed)
            num_vars = rng.randint(8, 14)
            cores = _cores(reduce_db=True, reduce_base=1)
            for _name, solver in cores:
                solver.ensure_vars(num_vars)
            # Interleave clause batches with assumption solves.
            for _round in range(4):
                batch = _random_clauses(rng, num_vars, rng.randint(5, 15))
                assumptions = [
                    rng.randint(1, num_vars) * rng.choice((1, -1))
                    for _ in range(rng.randint(0, 3))
                ]
                outcomes = []
                for name, solver in cores:
                    solver.add_clauses(batch)
                    verdict = solver.solve(assumptions=assumptions)
                    model = solver.model() if verdict is SatResult.SAT else None
                    outcomes.append((name, verdict, model, _observables(solver)))
                baseline = outcomes[0]
                for other in outcomes[1:]:
                    assert other[1:] == baseline[1:], (
                        f"seed {seed}: {other[0]} diverged from {baseline[0]}"
                    )

    def test_arena_invariants_after_reduce_heavy_runs(self):
        for seed in range(6):
            rng = random.Random(11_000 + seed)
            num_vars = rng.randint(10, 16)
            solver = SatSolver(reduce_db=True, reduce_base=1)
            solver.ensure_vars(num_vars)
            for _round in range(3):
                solver.add_clauses(
                    _random_clauses(rng, num_vars, rng.randint(10, 30))
                )
                assumptions = [
                    rng.randint(1, num_vars) * rng.choice((1, -1))
                    for _ in range(rng.randint(0, 2))
                ]
                verdict = solver.solve(assumptions=assumptions)
                _check_arena_invariants(solver)
                if verdict is SatResult.SAT:
                    solver.reduce_db()
                    _check_arena_invariants(solver)


class TestDpllTCorpus:
    """Swap the engine's SAT core for the legacy one and compare everything."""

    @pytest.mark.parametrize("chunk", range(2))
    def test_corpus_exact_agreement(self, chunk, monkeypatch):
        for index in range(15):
            seed = chunk * 15 + index
            rng = random.Random(1_000 + seed)  # the online/offline corpus seeds
            assertions, has_apps = _random_assertions(rng)

            flat_engine = DpllTEngine(assertions, reduce_base=1)
            flat_verdict = flat_engine.check()
            flat_model = (
                flat_engine.model() if flat_verdict is CheckResult.SAT else None
            )
            flat_stats = flat_engine.stats

            monkeypatch.setattr(dpllt, "SatSolver", LegacySatSolver)
            legacy_engine = DpllTEngine(assertions, reduce_base=1)
            legacy_verdict = legacy_engine.check()
            legacy_model = (
                legacy_engine.model()
                if legacy_verdict is CheckResult.SAT
                else None
            )
            legacy_stats = legacy_engine.stats
            monkeypatch.undo()

            assert flat_verdict == legacy_verdict, f"seed {seed}"
            if flat_model is not None and not has_apps:
                assert legacy_model is not None
                for assertion in assertions:
                    assert flat_model.satisfies(assertion), f"seed {seed}"
            assert (
                flat_stats.sat_conflicts == legacy_stats.sat_conflicts
            ), f"seed {seed}"
            assert (
                flat_stats.sat_decisions == legacy_stats.sat_decisions
            ), f"seed {seed}"
            assert (
                flat_stats.theory_conflicts == legacy_stats.theory_conflicts
            ), f"seed {seed}"
