"""Tests for the SMT term language and smart constructors."""

import pytest

from repro.smt.sorts import BOOL, INT, uninterpreted_sort
from repro.smt.terms import (
    Add,
    And,
    App,
    BoolVal,
    BoolVar,
    Distinct,
    Eq,
    FALSE,
    Function,
    Ge,
    Gt,
    Iff,
    Implies,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Mul,
    Ne,
    Neg,
    Not,
    Or,
    Sub,
    TRUE,
    Var,
    Xor,
    atoms_of,
    free_variables,
    substitute,
    term_size,
)
from repro.utils.errors import SolverError


class TestSorts:
    def test_singletons(self):
        assert BOOL.is_bool and not BOOL.is_int
        assert INT.is_int and not INT.is_bool

    def test_uninterpreted(self):
        msg = uninterpreted_sort("Msg")
        assert msg.is_uninterpreted
        with pytest.raises(ValueError):
            uninterpreted_sort("Int")


class TestConstants:
    def test_bool_constants(self):
        assert TRUE.is_true and FALSE.is_false
        assert BoolVal(True) == TRUE
        assert BoolVal(False) == FALSE

    def test_int_constant(self):
        assert IntVal(5).value == 5
        assert IntVal(-3).sort.is_int

    def test_int_constant_rejects_bool(self):
        with pytest.raises(SolverError):
            IntVal(True)

    def test_variables(self):
        x = IntVar("x")
        assert x.is_var and x.sort.is_int
        b = BoolVar("b")
        assert b.sort.is_bool
        with pytest.raises(SolverError):
            Var("", INT)


class TestBooleanConstructors:
    def test_not_folds(self):
        a = BoolVar("a")
        assert Not(TRUE) == FALSE
        assert Not(FALSE) == TRUE
        assert Not(Not(a)) == a

    def test_and_flattens_and_folds(self):
        a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
        term = And(a, And(b, c))
        assert term.kind == "and"
        assert len(term.args) == 3
        assert And(a, TRUE) == a
        assert And(a, FALSE) == FALSE
        assert And() == TRUE
        assert And([a, b]).kind == "and"

    def test_or_flattens_and_folds(self):
        a, b = BoolVar("a"), BoolVar("b")
        assert Or(a, FALSE) == a
        assert Or(a, TRUE) == TRUE
        assert Or() == FALSE
        assert len(Or(a, Or(b, a)).args) == 3

    def test_implies(self):
        a, b = BoolVar("a"), BoolVar("b")
        assert Implies(TRUE, b) == b
        assert Implies(FALSE, b) == TRUE
        assert Implies(a, TRUE) == TRUE
        assert Implies(a, FALSE) == Not(a)
        assert Implies(a, b).kind == "implies"

    def test_iff_and_xor(self):
        a, b = BoolVar("a"), BoolVar("b")
        assert Iff(a, a) == TRUE
        assert Iff(TRUE, b) == b
        assert Iff(FALSE, b) == Not(b)
        assert Xor(a, b) == Not(Iff(a, b))

    def test_ite(self):
        a = BoolVar("a")
        x, y = IntVar("x"), IntVar("y")
        assert Ite(TRUE, x, y) == x
        assert Ite(FALSE, x, y) == y
        assert Ite(a, x, x) == x
        assert Ite(a, x, y).sort.is_int
        with pytest.raises(SolverError):
            Ite(a, x, BoolVar("b"))

    def test_type_errors(self):
        x = IntVar("x")
        with pytest.raises(SolverError):
            And(x)
        with pytest.raises(SolverError):
            Not(x)


class TestArithmeticConstructors:
    def test_add_folds_constants(self):
        x = IntVar("x")
        term = Add(x, IntVal(2), IntVal(3))
        assert term.kind == "add"
        consts = [a.value for a in term.args if a.kind == "intconst"]
        assert consts == [5]
        assert Add(IntVal(2), IntVal(3)) == IntVal(5)
        assert Add(x) == x

    def test_sub_and_neg(self):
        x, y = IntVar("x"), IntVar("y")
        assert Neg(IntVal(4)) == IntVal(-4)
        assert Neg(Neg(x)) == x
        diff = Sub(x, y)
        assert diff.kind == "add"

    def test_mul_linear_only(self):
        x = IntVar("x")
        assert Mul(0, x) == IntVal(0)
        assert Mul(1, x) == x
        assert Mul(2, IntVal(3)) == IntVal(6)
        assert Mul(3, x).kind == "mul"
        with pytest.raises(SolverError):
            Mul(x, IntVar("y"))

    def test_comparisons_fold(self):
        x = IntVar("x")
        assert Le(IntVal(1), IntVal(2)) == TRUE
        assert Lt(IntVal(2), IntVal(2)) == FALSE
        assert Le(x, x) == TRUE
        assert Lt(x, x) == FALSE
        assert Ge(x, IntVal(0)) == Le(IntVal(0), x)
        assert Gt(x, IntVal(0)) == Lt(IntVal(0), x)

    def test_comparison_requires_int(self):
        with pytest.raises(SolverError):
            Le(BoolVar("a"), IntVar("x"))


class TestEquality:
    def test_eq_folding(self):
        x = IntVar("x")
        assert Eq(x, x) == TRUE
        assert Eq(IntVal(1), IntVal(1)) == TRUE
        assert Eq(IntVal(1), IntVal(2)) == FALSE

    def test_eq_sort_mismatch(self):
        with pytest.raises(SolverError):
            Eq(IntVar("x"), BoolVar("b"))

    def test_ne(self):
        x, y = IntVar("x"), IntVar("y")
        assert Ne(x, y) == Not(Eq(x, y))

    def test_distinct(self):
        x, y, z = IntVar("x"), IntVar("y"), IntVar("z")
        term = Distinct(x, y, z)
        # three pairwise disequalities
        assert term.kind == "and"
        assert len(term.args) == 3
        assert Distinct(x) == TRUE
        assert Distinct() == TRUE


class TestUninterpreted:
    def test_application(self):
        f = Function("f", (INT,), INT)
        x = IntVar("x")
        app = App(f, x)
        assert app.kind == "app" and app.sort.is_int
        with pytest.raises(SolverError):
            App(f)
        with pytest.raises(SolverError):
            App(f, BoolVar("b"))

    def test_nullary_constant(self):
        sort = uninterpreted_sort("Msg")
        c = Function("m0", (), sort)
        term = App(c)
        assert term.sort == sort
        assert str(term) == "m0"


class TestHelpers:
    def test_free_variables(self):
        x, y = IntVar("x"), IntVar("y")
        b = BoolVar("b")
        formula = And(b, Lt(x, Add(y, IntVal(1))))
        variables = free_variables(formula)
        assert set(variables) == {"x", "y", "b"}
        assert variables["x"].is_int
        assert variables["b"].is_bool

    def test_substitute(self):
        x, y = IntVar("x"), IntVar("y")
        formula = Lt(x, Add(x, y))
        result = substitute(formula, {x: IntVal(3)})
        assert "x" not in free_variables(result)

    def test_substitute_sort_mismatch(self):
        with pytest.raises(SolverError):
            substitute(Lt(IntVar("x"), IntVal(1)), {IntVar("x"): BoolVar("b")})

    def test_term_size_and_atoms(self):
        x, y = IntVar("x"), IntVar("y")
        formula = And(Lt(x, y), Or(Le(y, x), BoolVar("b")))
        assert term_size(formula) >= 5
        atoms = atoms_of(formula)
        assert Lt(x, y) in atoms
        assert Le(y, x) in atoms
        assert BoolVar("b") in atoms

    def test_str_roundtrip_shapes(self):
        x = IntVar("x")
        assert str(Lt(x, IntVal(2))) == "(< x 2)"
        assert str(IntVal(-2)) == "(- 2)"
        assert str(TRUE) == "true"
