"""Tests for formula preprocessing and Tseitin CNF conversion."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cnf import tseitin
from repro.smt.models import Model
from repro.smt.simplify import (
    eliminate_int_equalities,
    eliminate_int_ite,
    preprocess,
    rewrite_bool_eq,
    simplify_constants,
)
from repro.smt.terms import (
    Add,
    And,
    BoolVar,
    Eq,
    FALSE,
    Iff,
    Implies,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    Xor,
    atoms_of,
)
from repro.utils.errors import SolverError


class TestSimplify:
    def test_eliminate_int_equalities(self):
        x, y = IntVar("x"), IntVar("y")
        rewritten = eliminate_int_equalities(Eq(x, y))
        assert rewritten == And(Le(x, y), Le(y, x))
        # Nested occurrence under negation is rewritten too.
        nested = eliminate_int_equalities(Not(Eq(x, IntVal(3))))
        assert all(a.kind != "eq" for a in nested.walk())

    def test_rewrite_bool_eq(self):
        a, b = BoolVar("a"), BoolVar("b")
        assert rewrite_bool_eq(Eq(a, b)) == Iff(a, b)

    def test_eliminate_int_ite(self):
        x, y = IntVar("x"), IntVar("y")
        cond = Lt(x, IntVal(0))
        formula = Le(Ite(cond, x, y), IntVal(5))
        lifted = eliminate_int_ite(formula)
        assert all(
            not (node.kind == "ite" and node.sort.is_int) for node in lifted.walk()
        )
        # Semantics preserved on a few concrete assignments.
        for xv, yv in [(-1, 10), (3, 2), (7, 7), (-5, 9)]:
            model = Model({"x": xv, "y": yv})
            assert model.eval(lifted) == ((xv if xv < 0 else yv) <= 5)

    def test_eliminate_bool_formula_required(self):
        with pytest.raises(SolverError):
            eliminate_int_ite(IntVar("x"))

    def test_simplify_constants(self):
        a = BoolVar("a")
        x = IntVar("x")
        formula = And(Or(a, TRUE), Implies(FALSE, a), Le(Add(IntVal(1), IntVal(2)), IntVal(5)))
        assert simplify_constants(formula) == TRUE

    def test_preprocess_runs_all_passes(self):
        x, y = IntVar("x"), IntVar("y")
        a = BoolVar("a")
        formula = And(Eq(Ite(a, x, y), IntVal(3)), Eq(a, BoolVar("b")))
        result = preprocess(formula)
        for node in result.walk():
            assert not (node.kind == "ite" and node.sort.is_int)
            if node.kind == "eq":
                assert not node.args[0].sort.is_int
                assert not node.args[0].sort.is_bool


def _eval_clauses(clauses, assignment):
    """Evaluate CNF clauses under a variable assignment dict."""
    for clause in clauses:
        if not any(
            assignment.get(abs(lit), False) == (lit > 0) for lit in clause
        ):
            return False
    return True


def _cnf_satisfiable(result):
    variables = list(range(1, result.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if _eval_clauses(result.clauses, assignment):
            return True, assignment
    return False, None


class TestTseitin:
    def test_empty_assertions(self):
        result = tseitin([])
        assert result.clauses == []

    def test_true_assertion_produces_nothing(self):
        assert tseitin([TRUE]).clauses == []

    def test_false_assertion_is_unsat(self):
        sat, _ = _cnf_satisfiable(tseitin([FALSE]))
        assert not sat

    def test_atom_assertion(self):
        a = BoolVar("a")
        result = tseitin([a])
        assert result.clauses == [[result.atom_to_var[a]]]

    def test_top_level_conjunction_splits(self):
        a, b = BoolVar("a"), BoolVar("b")
        result = tseitin([And(a, b)])
        assert sorted(len(c) for c in result.clauses) == [1, 1]

    def test_atom_map_roundtrip(self):
        x, y = IntVar("x"), IntVar("y")
        atom = Lt(x, y)
        result = tseitin([Or(atom, BoolVar("a"))])
        var = result.atom_to_var[atom]
        assert result.var_to_atom[var] == atom

    def test_stats(self):
        a, b = BoolVar("a"), BoolVar("b")
        stats = tseitin([Or(a, b), And(a, Not(b))]).stats()
        assert stats["clauses"] > 0
        assert stats["variables"] >= stats["atoms"]

    def _assert_equisatisfiable(self, formula, expected_sat):
        result = tseitin([formula])
        sat, _ = _cnf_satisfiable(result)
        assert sat == expected_sat

    def test_equisatisfiability_basic(self):
        a, b = BoolVar("a"), BoolVar("b")
        self._assert_equisatisfiable(And(a, Not(a)), False)
        self._assert_equisatisfiable(Or(a, Not(a)), True)
        self._assert_equisatisfiable(Iff(a, Not(a)), False)
        self._assert_equisatisfiable(Xor(a, b), True)
        self._assert_equisatisfiable(And(Implies(a, b), a, Not(b)), False)
        self._assert_equisatisfiable(Ite(a, b, Not(b)), True)
        self._assert_equisatisfiable(And(Ite(a, b, Not(b)), Not(b), a), False)


@st.composite
def bool_formula(draw, depth=3):
    """Random Boolean formulas over three variables."""
    variables = [BoolVar("p"), BoolVar("q"), BoolVar("r")]
    if depth == 0:
        return draw(st.sampled_from(variables + [TRUE, FALSE]))
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return draw(st.sampled_from(variables))
    if choice == 1:
        return Not(draw(bool_formula(depth=depth - 1)))
    if choice == 2:
        return And(draw(bool_formula(depth=depth - 1)), draw(bool_formula(depth=depth - 1)))
    if choice == 3:
        return Or(draw(bool_formula(depth=depth - 1)), draw(bool_formula(depth=depth - 1)))
    if choice == 4:
        return Implies(draw(bool_formula(depth=depth - 1)), draw(bool_formula(depth=depth - 1)))
    if choice == 5:
        return Iff(draw(bool_formula(depth=depth - 1)), draw(bool_formula(depth=depth - 1)))
    return Ite(
        draw(bool_formula(depth=depth - 1)),
        draw(bool_formula(depth=depth - 1)),
        draw(bool_formula(depth=depth - 1)),
    )


class TestTseitinProperty:
    @settings(max_examples=80, deadline=None)
    @given(bool_formula())
    def test_cnf_equisatisfiable_with_formula(self, formula):
        """Tseitin CNF is satisfiable iff the original formula is."""
        names = ["p", "q", "r"]
        formula_sat = False
        for bits in itertools.product([False, True], repeat=3):
            if Model(dict(zip(names, bits))).eval(formula):
                formula_sat = True
                break
        cnf_sat, _ = _cnf_satisfiable(tseitin([formula]))
        assert cnf_sat == formula_sat
