"""Tests for the pooled SMT-LIB pipe backend: one external solver process
kept alive across checks, with recycle, crash-replay and deadline handling.

The stub solvers here are *interactive*: they read SMT-LIB commands from
stdin and answer ``(check-sat)`` / ``(get-model)`` / ``(echo ...)`` the way
a real z3/cvc5 session does, so the tests exercise the actual marker-sync
protocol rather than a canned transcript.
"""

import stat
import sys
import time

import pytest

from repro.smt import (
    CheckResult,
    Ge,
    IntVal,
    IntVar,
    Le,
    Lt,
    SmtLibProcessBackend,
    available_backends,
    create_backend,
)
from repro.smt.backend import SmtLibPipeBackend
from repro.utils.errors import BackendUnavailableError, SolverError

x, y = IntVar("x"), IntVar("y")


def _interactive_stub(
    tmp_path,
    verdicts="sat",
    model="( (define-fun x () Int 4) (define-fun y () Int 1) )",
    crash_after_checks=None,
    sleep_on_check=0.0,
    name="pipe-solver",
) -> str:
    """An executable speaking interactive SMT-LIB over stdin/stdout.

    ``verdicts`` is a comma-separated script of ``(check-sat)`` answers;
    the last one repeats.  ``crash_after_checks=K`` makes the process exit
    abruptly (no verdict) on check K+1, like a segfaulting solver.
    """
    script = tmp_path / name
    script.write_text(
        f"#!{sys.executable}\n"
        "import sys, time\n"
        f"verdicts = {verdicts!r}.split(',')\n"
        f"crash_after = {crash_after_checks!r}\n"
        f"sleep_on_check = {sleep_on_check!r}\n"
        "checks = 0\n"
        "for line in sys.stdin:\n"
        "    line = line.strip()\n"
        "    if line.startswith('(echo'):\n"
        "        print(line.split('\"')[1]); sys.stdout.flush()\n"
        "    elif line == '(check-sat)':\n"
        "        if crash_after is not None and checks >= crash_after:\n"
        "            sys.exit(9)\n"
        "        if sleep_on_check:\n"
        "            time.sleep(sleep_on_check)\n"
        "        print(verdicts[min(checks, len(verdicts) - 1)])\n"
        "        sys.stdout.flush()\n"
        "        checks += 1\n"
        "    elif line == '(get-model)':\n"
        f"        print('''{model}'''); sys.stdout.flush()\n"
        "    elif line == '(exit)':\n"
        "        break\n"
    )
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


class TestPipeSession:
    def test_registered_backend(self):
        assert "smtlib-pipe" in available_backends()

    def test_unconfigured_unavailable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SMT_SOLVER", raising=False)
        with pytest.raises(BackendUnavailableError):
            SmtLibPipeBackend()
        assert not SmtLibPipeBackend.is_available()

    def test_one_process_many_checks(self, tmp_path):
        backend = SmtLibPipeBackend(command=_interactive_stub(tmp_path))
        backend.add(Ge(x, IntVal(0)))
        for _ in range(5):
            assert backend.check() is CheckResult.SAT
        assert backend.model().value_of("x") == 4
        stats = backend.statistics()
        assert stats["external_checks"] == 5
        # One warm session the whole way: never recycled, never restarted.
        assert "pipe_restarts" not in stats
        assert "pipe_recycles" not in stats
        backend.close()

    def test_verdict_sequence_and_assumptions(self, tmp_path):
        command = _interactive_stub(tmp_path, verdicts="sat,unsat,unknown")
        backend = SmtLibPipeBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.SAT
        assert backend.check(Lt(x, IntVal(0))) is CheckResult.UNSAT
        with pytest.raises(SolverError):
            backend.model()  # last check was not SAT
        assert backend.check() is CheckResult.UNKNOWN
        backend.close()

    def test_push_pop_mirror(self, tmp_path):
        backend = SmtLibPipeBackend(command=_interactive_stub(tmp_path))
        backend.add(Ge(x, IntVal(0)))
        backend.push()
        backend.add(Le(x, IntVal(5)))
        assert backend.check() is CheckResult.SAT
        backend.pop()
        assert backend._assertions == [Ge(x, IntVal(0))]
        with pytest.raises(SolverError):
            backend.pop()
        backend.close()

    def test_recycle_after_replays_assertions(self, tmp_path):
        backend = SmtLibPipeBackend(
            command=_interactive_stub(tmp_path), recycle_after=2
        )
        backend.add(Ge(x, IntVal(0)))
        for _ in range(5):
            assert backend.check() is CheckResult.SAT
        stats = backend.statistics()
        assert stats["external_checks"] == 5
        assert stats["pipe_recycles"] == 2  # before checks 3 and 5
        assert "pipe_restarts" not in stats  # recycle is in-place, not a crash
        backend.close()

    def test_crash_mid_check_replays_and_retries(self, tmp_path):
        """A solver dying during check K+1 costs one restart, not the
        verdict: the session replays the mirrored assertions and re-asks."""
        command = _interactive_stub(tmp_path, crash_after_checks=2)
        backend = SmtLibPipeBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.SAT
        assert backend.check() is CheckResult.SAT
        # The third check crashes the process; the fresh replayed session
        # (checks reset to 0 in the stub) answers it.
        assert backend.check() is CheckResult.SAT
        stats = backend.statistics()
        assert stats["external_checks"] == 3
        assert stats["pipe_restarts"] == 1
        backend.close()

    def test_always_crashing_solver_fails_loudly(self, tmp_path):
        command = _interactive_stub(tmp_path, crash_after_checks=0)
        backend = SmtLibPipeBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError) as excinfo:
            backend.check()
        assert "twice" in str(excinfo.value)
        backend.close()

    def test_deadline_returns_unknown_and_session_recovers(self, tmp_path):
        command = _interactive_stub(tmp_path, sleep_on_check=30.0)
        backend = SmtLibPipeBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        backend.set_deadline(time.monotonic() + 0.2)
        start = time.monotonic()
        assert backend.check() is CheckResult.UNKNOWN
        assert time.monotonic() - start < 5.0
        # The wedged process was discarded; a fresh one answers normally.
        backend.set_deadline(None)
        fast = SmtLibPipeBackend(command=_interactive_stub(tmp_path, name="fast"))
        fast.add(Ge(x, IntVal(0)))
        assert fast.check() is CheckResult.SAT
        fast.close()
        backend.close()

    def test_io_timeout_without_deadline_raises(self, tmp_path):
        command = _interactive_stub(tmp_path, sleep_on_check=30.0)
        backend = SmtLibPipeBackend(command=command, timeout=0.2)
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError) as excinfo:
            backend.check()
        assert "timed out" in str(excinfo.value)
        backend.close()

    def test_factory_by_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SMT_SOLVER", _interactive_stub(tmp_path, verdicts="unsat")
        )
        backend = create_backend("smtlib-pipe")
        assert isinstance(backend, SmtLibPipeBackend)
        backend.add(Lt(x, x))
        assert backend.check() is CheckResult.UNSAT
        backend.close()


class TestPipeDifferential:
    """The pipe session and the one-shot process backend must agree."""

    @pytest.mark.parametrize("verdict", ["sat", "unsat", "unknown"])
    def test_pipe_matches_one_shot_verdicts(self, tmp_path, verdict):
        command = _interactive_stub(tmp_path, verdicts=verdict)
        one_shot_command = tmp_path / "one-shot"
        model = (
            "\n(\n  (define-fun x () Int 4)\n  (define-fun y () Int 1)\n)"
            if verdict == "sat"
            else ""
        )
        one_shot_command.write_text(
            f"#!{sys.executable}\nprint('''{verdict}{model}''')\n"
        )
        one_shot_command.chmod(one_shot_command.stat().st_mode | stat.S_IXUSR)

        pipe = SmtLibPipeBackend(command=command)
        one_shot = SmtLibProcessBackend(command=str(one_shot_command))
        for backend in (pipe, one_shot):
            backend.add(Ge(x, IntVal(0)), Le(y, IntVal(9)))
        assert pipe.check() is one_shot.check() is CheckResult(verdict)
        if verdict == "sat":
            assert pipe.model().value_of("x") == one_shot.model().value_of("x") == 4
        pipe.close()

    def test_session_verdicts_match_across_backends(self, tmp_path):
        """A full verification session reaches the same SAFE verdict
        through the pipe as through the one-shot process backend."""
        from repro.verification import Verdict, VerificationSession
        from repro.workloads import pipeline

        stub_unsat = tmp_path / "unsat-one-shot"
        stub_unsat.write_text(f"#!{sys.executable}\nprint('unsat')\n")
        stub_unsat.chmod(stub_unsat.stat().st_mode | stat.S_IXUSR)

        results = {}
        for label, backend in (
            ("pipe", SmtLibPipeBackend(command=_interactive_stub(tmp_path, verdicts="unsat"))),
            ("one-shot", SmtLibProcessBackend(command=str(stub_unsat))),
        ):
            session = VerificationSession.from_program(
                pipeline(3), seed=0, backend=backend
            )
            results[label] = session.verdict().verdict
        assert results["pipe"] is results["one-shot"] is Verdict.SAFE

    def test_session_reuses_one_pipe_process_across_checks(self, tmp_path):
        """Both verification questions of a session ride the same solver
        process — the entire point of the pooled backend."""
        from repro.verification import VerificationSession
        from repro.workloads import pipeline

        backend = SmtLibPipeBackend(
            command=_interactive_stub(tmp_path, verdicts="unsat")
        )
        session = VerificationSession.from_program(pipeline(3), seed=0, backend=backend)
        session.verdict()
        session.verdict()  # memoised, but enumerate below is not
        stats = backend.statistics()
        assert stats["external_checks"] >= 1
        assert "pipe_restarts" not in stats
