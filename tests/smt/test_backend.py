"""Tests for the solver-backend layer: incrementality semantics, the
backend registry, and the external SMT-LIB process backend."""

import os
import stat
import sys

import pytest

from repro.smt import (
    And,
    BoolVar,
    CheckResult,
    DpllTBackend,
    Eq,
    Ge,
    IntVal,
    IntVar,
    Le,
    Lt,
    Not,
    Or,
    SmtLibProcessBackend,
    Solver,
    available_backends,
    create_backend,
    register_backend,
)
from repro.smt.backend import _parse_sexprs
from repro.smt.dpllt import IncrementalDpllTEngine
from repro.utils.errors import (
    BackendUnavailableError,
    SolverError,
    UnknownBackendError,
)


x, y, z = IntVar("x"), IntVar("y"), IntVar("z")


class TestIncrementalSemantics:
    """Push/pop, assumptions and model queries interleaved on one engine."""

    def test_push_pop_interleaved_with_check_and_model(self):
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)), Le(x, IntVal(10)))
        assert b.check() is CheckResult.SAT
        assert 0 <= b.model().value_of("x") <= 10

        b.push()
        b.add(Ge(x, IntVal(5)))
        assert b.check() is CheckResult.SAT
        assert b.model().value_of("x") >= 5

        b.push()
        b.add(Lt(x, IntVal(5)))
        assert b.check() is CheckResult.UNSAT

        b.pop()  # drop x < 5
        assert b.check() is CheckResult.SAT
        assert b.model().value_of("x") >= 5

        b.pop()  # drop x >= 5
        b.add(Lt(x, IntVal(3)))  # base-level assertion after pops
        assert b.check() is CheckResult.SAT
        assert 0 <= b.model().value_of("x") < 3

    def test_deep_scope_nesting(self):
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)))
        for bound in (8, 6, 4, 2):
            b.push()
            b.add(Le(x, IntVal(bound)))
            assert b.check() is CheckResult.SAT
            assert b.model().value_of("x") <= bound
        b.push()
        b.add(Lt(x, IntVal(0)))
        assert b.check() is CheckResult.UNSAT
        for _ in range(5):
            b.pop()
        assert b.check() is CheckResult.SAT

    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            DpllTBackend().pop()

    def test_model_survives_push(self):
        """Opening a scope adds no constraints; the check/model/push/probe
        pattern from the legacy facade must keep working."""
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)), Le(x, IntVal(5)))
        assert b.check() is CheckResult.SAT
        value = b.model().value_of("x")
        b.push()
        assert b.model().value_of("x") == value
        b.pop()
        with pytest.raises(SolverError):
            b.model()  # pop retires state, like the old facade

    def test_rejected_atom_does_not_corrupt_engine(self):
        """A failed add must not silently drop later atoms from the theory
        partition: subsequent use keeps failing loudly instead of going
        unsound."""
        from repro.smt import BOOL, App, Function, Var, uninterpreted_sort

        u = uninterpreted_sort("U")
        pred = Function("P", (u,), BOOL)
        b = DpllTBackend()
        bad = And(App(pred, Var("u0", u)), Eq(x, IntVal(1)), Eq(x, IntVal(2)))
        with pytest.raises(SolverError):
            b.add(bad)
        # The engine is poisoned loudly, not silently: the unsupported atom
        # is retried (and rejected) on the next flush.
        with pytest.raises(SolverError):
            b.check()

    def test_assumptions_are_call_scoped(self):
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)))
        assert b.check(Lt(x, IntVal(0))) is CheckResult.UNSAT
        assert b.check() is CheckResult.SAT
        # Assumption-UNSAT must not poison later, different assumptions.
        assert b.check(Ge(x, IntVal(7))) is CheckResult.SAT
        assert b.model().value_of("x") >= 7

    def test_compound_assumptions(self):
        b = DpllTBackend()
        a = BoolVar("a")
        b.add(Or(a, Ge(x, IntVal(10))))
        assert b.check(And(Not(a), Le(x, IntVal(3)))) is CheckResult.UNSAT
        assert b.check(Not(a)) is CheckResult.SAT
        assert b.model().value_of("x") >= 10

    def test_model_invalidated_by_add(self):
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)))
        assert b.check() is CheckResult.SAT
        b.add(Le(x, IntVal(5)))
        with pytest.raises(SolverError):
            b.model()

    def test_model_after_unsat_raises(self):
        b = DpllTBackend()
        b.add(Lt(x, x))
        assert b.check() is CheckResult.UNSAT
        with pytest.raises(SolverError):
            b.model()

    def test_learned_state_reused_across_checks(self):
        """Theory lemmas survive check boundaries: re-checking the same
        problem must not rediscover any theory conflict, and an enumeration
        never pays the first check's lemma bill twice."""
        b = DpllTBackend()
        vs = [IntVar(f"v{i}") for i in range(4)]
        for i, v in enumerate(vs):
            b.add(Ge(v, IntVal(0)), Le(v, IntVal(3)))
        for i in range(len(vs) - 1):
            b.add(Lt(vs[i], vs[i + 1]))  # forces v0<v1<v2<v3 == 0,1,2,3
        assert b.check() is CheckResult.SAT
        first_conflicts = b.engine.stats.theory_conflicts
        assert b.check() is CheckResult.SAT
        assert b.engine.stats.theory_conflicts == 0
        assert first_conflicts >= 0  # first check may or may not have conflicted
        assert b.engine.total_checks == 2

    def test_incremental_engine_does_less_work_than_cold_restarts(self):
        """An enumeration on one engine performs far fewer DPLL(T) iterations
        than rebuilding a fresh engine per query (the seed architecture).

        IDL bound propagation is pinned off in both lanes: it converts the
        ordering conflicts this workload counts into unit propagations,
        which collapses both iteration counts to the per-check minimum and
        leaves nothing for the warm-vs-cold comparison to measure."""
        from repro.smt.dpllt import DpllTEngine

        def constraints():
            terms = []
            vs = [IntVar(f"w{i}") for i in range(4)]
            for v in vs:
                terms.append(Ge(v, IntVal(0)))
                terms.append(Le(v, IntVal(2)))
            terms.append(Lt(vs[0], vs[1]))
            terms.append(Lt(vs[1], vs[2]))
            return terms, vs

        terms, vs = constraints()

        # Cold: fresh engine per check, blocking clauses re-supplied.
        blocking = []
        cold_iterations = 0
        while True:
            engine = DpllTEngine(terms + blocking, idl_propagation=False)
            result = engine.check()
            cold_iterations += engine.stats.iterations
            if result is not CheckResult.SAT:
                break
            model = engine.model()
            blocking.append(
                Not(And([Eq(v, IntVal(model.value_of(v.name))) for v in vs]))
            )
        solutions_cold = len(blocking)

        # Warm: one incremental engine, same enumeration.
        warm = IncrementalDpllTEngine(idl_propagation=False)
        for term in terms:
            warm.add(term)
        warm_iterations = 0
        solutions_warm = 0
        while warm.check() is CheckResult.SAT:
            warm_iterations += warm.stats.iterations
            model = warm.model()
            solutions_warm += 1
            warm.add(Not(And([Eq(v, IntVal(model.value_of(v.name))) for v in vs])))
        warm_iterations += warm.stats.iterations

        assert solutions_warm == solutions_cold > 0
        assert warm_iterations < cold_iterations

    def test_blocking_enumeration_in_scope_restores_state(self):
        b = DpllTBackend()
        b.add(Ge(x, IntVal(0)), Le(x, IntVal(2)))
        b.push()
        seen = set()
        while b.check() is CheckResult.SAT:
            value = b.model().value_of("x")
            seen.add(value)
            b.add(Not(Eq(x, IntVal(value))))
        b.pop()
        assert seen == {0, 1, 2}
        # After popping the blocking clauses every value is reachable again.
        assert b.check(Eq(x, IntVal(0))) is CheckResult.SAT
        assert b.check(Eq(x, IntVal(2))) is CheckResult.SAT

    def test_unknown_on_iteration_limit(self):
        b = DpllTBackend(max_iterations=0)
        b.add(Ge(x, IntVal(0)))
        assert b.check() is CheckResult.UNKNOWN

    def test_statistics_shape(self):
        b = DpllTBackend()
        assert b.statistics() == {}
        b.add(Lt(x, IntVal(3)))
        b.check()
        stats = b.statistics()
        assert stats["atoms"] >= 1
        assert stats["checks"] == 1

    def test_sat_statistics_are_per_check(self):
        """sat_decisions/sat_conflicts report the last check, not the
        engine's lifetime totals."""
        b = DpllTBackend()
        vs = [IntVar(f"s{i}") for i in range(4)]
        for v in vs:
            b.add(Ge(v, IntVal(0)), Le(v, IntVal(3)))
        for i in range(len(vs) - 1):
            b.add(Lt(vs[i], vs[i + 1]))
        # Disjunctions so the SAT core must actually decide something.
        for i, v in enumerate(vs):
            b.add(Or(BoolVar(f"p{i}"), Eq(v, IntVal(i))))
        assert b.check() is CheckResult.SAT
        first = b.statistics()["sat_decisions"]
        assert b.check() is CheckResult.SAT
        second = b.statistics()["sat_decisions"]
        # A warm identical re-check decides at most as much as the first
        # check — impossible if the counter were cumulative and > 0.
        assert first > 0
        assert second <= first


class TestSolverFacadeOverBackends:
    def test_solver_uses_incremental_backend_by_default(self):
        s = Solver()
        assert isinstance(s.backend, DpllTBackend)
        s.add(Ge(x, IntVal(0)))
        assert s.check() is CheckResult.SAT
        assert s.backend.engine.total_checks == 1
        assert s.check() is CheckResult.SAT
        assert s.backend.engine.total_checks == 2  # same engine, not rebuilt

    def test_solver_accepts_backend_instance(self):
        backend = DpllTBackend(max_iterations=10_000)
        s = Solver(backend=backend)
        assert s.backend is backend

    def test_solver_rejects_unknown_backend_name(self):
        with pytest.raises(UnknownBackendError):
            Solver(backend="not-a-backend")


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "dpllt" in names
        assert "smtlib" in names

    def test_create_by_name_and_default(self):
        assert isinstance(create_backend("dpllt"), DpllTBackend)
        assert isinstance(create_backend(None), DpllTBackend)

    def test_create_passes_kwargs(self):
        backend = create_backend("dpllt", max_iterations=0)
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.UNKNOWN

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            create_backend("yices")
        message = str(excinfo.value)
        assert "yices" in message
        assert "dpllt" in message

    def test_instance_passthrough(self):
        backend = DpllTBackend()
        assert create_backend(backend) is backend

    def test_non_backend_object_rejected(self):
        with pytest.raises(UnknownBackendError):
            create_backend(42)

    def test_register_custom_backend(self):
        calls = []

        def factory(**kwargs):
            calls.append(kwargs)
            return DpllTBackend(**kwargs)

        register_backend("custom-test", factory)
        try:
            backend = create_backend("custom-test", max_iterations=123)
            assert isinstance(backend, DpllTBackend)
            assert calls == [{"max_iterations": 123}]
            with pytest.raises(SolverError):
                register_backend("custom-test", factory)
            register_backend("custom-test", factory, replace=True)
        finally:
            from repro.smt import backend as backend_module

            backend_module._REGISTRY.pop("custom-test", None)


def _stub_solver(tmp_path, output: str) -> str:
    """Create an executable that ignores its input and prints ``output``."""
    script = tmp_path / "fake-solver"
    script.write_text(f"#!{sys.executable}\nprint('''{output}''')\n")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


class TestSmtLibProcessBackend:
    def test_unconfigured_backend_unavailable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SMT_SOLVER", raising=False)
        with pytest.raises(BackendUnavailableError):
            SmtLibProcessBackend()
        assert not SmtLibProcessBackend.is_available()

    def test_missing_binary_unavailable(self):
        with pytest.raises(BackendUnavailableError):
            SmtLibProcessBackend(command="definitely-not-a-solver-binary")

    def test_sat_with_model_parsing(self, tmp_path):
        command = _stub_solver(
            tmp_path,
            "sat\n(\n  (define-fun x () Int 4)\n"
            "  (define-fun y () Int (- 2))\n"
            "  (define-fun a () Bool true)\n)",
        )
        backend = SmtLibProcessBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.SAT
        model = backend.model()
        assert model.value_of("x") == 4
        assert model.value_of("y") == -2
        assert model.value_of("a") is True
        assert backend.statistics() == {"external_checks": 1}

    def test_unsat_and_unknown(self, tmp_path):
        backend = SmtLibProcessBackend(command=_stub_solver(tmp_path, "unsat"))
        backend.add(Lt(x, x))
        assert backend.check() is CheckResult.UNSAT
        with pytest.raises(SolverError):
            backend.model()
        backend = SmtLibProcessBackend(command=_stub_solver(tmp_path, "unknown"))
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.UNKNOWN

    def test_unknown_with_model_error_chatter(self, tmp_path):
        """z3/yices answer 'unknown' then object to the (get-model); that is
        an UNKNOWN verdict, not a solver failure."""
        command = _stub_solver(
            tmp_path, 'unknown\n(error "model is not available")'
        )
        backend = SmtLibProcessBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        assert backend.check() is CheckResult.UNKNOWN

    def test_sat_without_model_raises(self, tmp_path):
        """'sat' with no parseable model must not fabricate a default model."""
        command = _stub_solver(tmp_path, 'sat\n(error "model printing failed")')
        backend = SmtLibProcessBackend(command=command)
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError):
            backend.check()

    def test_garbage_output_raises(self, tmp_path):
        backend = SmtLibProcessBackend(command=_stub_solver(tmp_path, "flagrant"))
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError):
            backend.check()

    def test_push_pop_assertion_stack(self, tmp_path):
        backend = SmtLibProcessBackend(command=_stub_solver(tmp_path, "sat"))
        backend.add(Ge(x, IntVal(0)))
        backend.push()
        backend.add(Lt(x, IntVal(0)))
        backend.pop()
        assert backend._assertions == [Ge(x, IntVal(0))]
        with pytest.raises(SolverError):
            backend.pop()

    def test_registry_resolution_without_solver_configured(self, monkeypatch):
        monkeypatch.delenv("REPRO_SMT_SOLVER", raising=False)
        with pytest.raises(BackendUnavailableError):
            create_backend("smtlib")

    def test_sexpr_parser(self):
        parsed = _parse_sexprs("(model (define-fun x () Int 5))")
        assert parsed == [["model", ["define-fun", "x", [], "Int", "5"]]]
        with pytest.raises(SolverError):
            _parse_sexprs(")")

    def test_stub_solver_resolved_from_path(self, tmp_path, monkeypatch):
        """The solver command may be a bare binary name found on PATH, the
        way a real z3/cvc5 deployment configures it."""
        _stub_solver(tmp_path, "unsat")
        monkeypatch.setenv(
            "PATH", f"{tmp_path}{os.pathsep}{os.environ.get('PATH', '')}"
        )
        monkeypatch.setenv("REPRO_SMT_SOLVER", "fake-solver")
        assert SmtLibProcessBackend.is_available()
        backend = SmtLibProcessBackend()
        backend.add(Lt(x, x))
        assert backend.check() is CheckResult.UNSAT

    def test_nonzero_exit_without_verdict_raises_cleanly(self, tmp_path):
        script = tmp_path / "crashing-solver"
        script.write_text(
            f"#!{sys.executable}\nimport sys\n"
            "print('boom', file=sys.stderr)\nsys.exit(3)\n"
        )
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        backend = SmtLibProcessBackend(command=str(script))
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError) as excinfo:
            backend.check()
        message = str(excinfo.value)
        assert "status 3" in message
        assert "boom" in message

    def test_nonzero_exit_with_verdict_is_tolerated(self, tmp_path):
        """Some solvers exit nonzero after printing a perfectly good
        verdict; the verdict wins over the exit status."""
        script = tmp_path / "grumpy-solver"
        script.write_text(
            f"#!{sys.executable}\nimport sys\nprint('unsat')\nsys.exit(1)\n"
        )
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        backend = SmtLibProcessBackend(command=str(script))
        backend.add(Lt(x, x))
        assert backend.check() is CheckResult.UNSAT

    def test_silent_failure_raises_cleanly(self, tmp_path):
        script = tmp_path / "mute-solver"
        script.write_text(f"#!{sys.executable}\nimport sys\nsys.exit(127)\n")
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        backend = SmtLibProcessBackend(command=str(script))
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError) as excinfo:
            backend.check()
        assert "no output" in str(excinfo.value)

    def test_timeout_raises_solver_error(self, tmp_path):
        script = tmp_path / "sleepy-solver"
        script.write_text(
            f"#!{sys.executable}\nimport time\ntime.sleep(30)\nprint('sat')\n"
        )
        script.chmod(script.stat().st_mode | stat.S_IXUSR)
        backend = SmtLibProcessBackend(command=str(script), timeout=0.2)
        backend.add(Ge(x, IntVal(0)))
        with pytest.raises(SolverError) as excinfo:
            backend.check()
        assert "timed out" in str(excinfo.value)

    def test_end_to_end_session_over_stub_unsat_solver(self, tmp_path):
        """A session on the smtlib backend reaches the external process and
        turns its UNSAT into a SAFE verdict."""
        from repro.verification import Verdict, VerificationSession
        from repro.workloads import pipeline

        command = _stub_solver(tmp_path, "unsat")
        session = VerificationSession.from_program(
            pipeline(3), seed=0, backend=SmtLibProcessBackend(command=command)
        )
        result = session.verdict()
        assert result.verdict is Verdict.SAFE
        assert result.backend == "smtlib"


@pytest.mark.skipif(
    not SmtLibProcessBackend.is_available(),
    reason="no external SMT solver configured (set REPRO_SMT_SOLVER)",
)
class TestSmtLibAgainstRealSolver:
    """Cross-checks that only run when an external solver is installed."""

    def test_agrees_with_dpllt(self):
        external = SmtLibProcessBackend()
        external.add(Lt(x, y), Lt(y, IntVal(3)), Lt(IntVal(0), x))
        assert external.check() is CheckResult.SAT
        model = external.model()
        assert 0 < model.value_of("x") < model.value_of("y") < 3
