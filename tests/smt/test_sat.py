"""Tests for the CDCL SAT solver, including a random-formula cross-check."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatResult, SatSolver, luby
from repro.utils.errors import SolverError


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_invalid(self):
        with pytest.raises(SolverError):
            luby(0)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve() is SatResult.SAT

    def test_unit_clause(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve() is SatResult.SAT
        assert solver.value(a) is True

    def test_contradictory_units(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.add_clause([-a]) is False
        assert solver.solve() is SatResult.UNSAT

    def test_simple_sat(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SatResult.SAT
        assert solver.value(b) is True

    def test_simple_unsat(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clauses([[a, b], [a, -b], [-a, b], [-a, -b]])
        assert solver.solve() is SatResult.UNSAT

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a, -a])
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_collapse(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a, a, a])
        assert solver.solve() is SatResult.SAT
        assert solver.value(a) is True

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(SolverError):
            solver.add_clause([0])

    def test_unknown_variable_value(self):
        solver = SatSolver()
        with pytest.raises(SolverError):
            solver.value(3)

    def test_ensure_vars(self):
        solver = SatSolver()
        solver.add_clause([5])
        assert solver.num_vars >= 5
        assert solver.solve() is SatResult.SAT
        assert solver.value(5) is True

    def test_model_covers_assigned_vars(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a, b])
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert model[a] is True and model[b] is True


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, b])
        assert solver.solve(assumptions=[a]) is SatResult.SAT
        assert solver.value(a) is True
        assert solver.value(b) is True

    def test_conflicting_assumption(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([-a])
        assert solver.solve(assumptions=[a]) is SatResult.UNSAT
        # The solver is reusable afterwards.
        assert solver.solve() is SatResult.SAT
        assert solver.value(a) is False

    def test_incremental_use(self):
        solver = SatSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b, c])
        assert solver.solve(assumptions=[-a, -b]) is SatResult.SAT
        assert solver.value(c) is True
        solver.add_clause([-c])
        assert solver.solve(assumptions=[-a, -b]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT


class TestStructuredProblems:
    def test_pigeonhole_3_into_2_unsat(self):
        """3 pigeons cannot fit in 2 holes (classic small UNSAT instance)."""
        solver = SatSolver()
        var = {}
        for p in range(3):
            for h in range(2):
                var[(p, h)] = solver.new_var()
        for p in range(3):
            solver.add_clause([var[(p, h)] for h in range(2)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve() is SatResult.UNSAT

    def test_pigeonhole_4_into_3_unsat(self):
        solver = SatSolver()
        var = {}
        pigeons, holes = 4, 3
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats.conflicts > 0

    def test_graph_coloring_sat(self):
        """A 5-cycle is 3-colourable but not 2-colourable."""
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]

        def colorable(num_colors):
            solver = SatSolver()
            var = {}
            for node in range(5):
                for color in range(num_colors):
                    var[(node, color)] = solver.new_var()
            for node in range(5):
                solver.add_clause([var[(node, c)] for c in range(num_colors)])
                for c1 in range(num_colors):
                    for c2 in range(c1 + 1, num_colors):
                        solver.add_clause([-var[(node, c1)], -var[(node, c2)]])
            for a, b in edges:
                for c in range(num_colors):
                    solver.add_clause([-var[(a, c)], -var[(b, c)]])
            return solver.solve()

        assert colorable(2) is SatResult.UNSAT
        assert colorable(3) is SatResult.SAT

    def test_conflict_limit_returns_unknown(self):
        solver = SatSolver()
        var = {}
        pigeons, holes = 7, 6
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve(conflict_limit=5) is SatResult.UNKNOWN


def _brute_force_sat(num_vars, clauses):
    """Reference truth-table satisfiability check."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(
                bits[abs(lit) - 1] if lit > 0 else not bits[abs(lit) - 1]
                for lit in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(random_cnf())
    def test_random_cnf_matches_truth_table(self, problem):
        num_vars, clauses = problem
        solver = SatSolver()
        solver.ensure_vars(num_vars)
        solver.add_clauses(clauses)
        result = solver.solve()
        expected = _brute_force_sat(num_vars, clauses)
        assert (result is SatResult.SAT) == expected
        if result is SatResult.SAT:
            model = solver.model()
            for clause in clauses:
                assert any(
                    model.get(abs(lit), False) == (lit > 0) for lit in clause
                ), f"model does not satisfy clause {clause}"
