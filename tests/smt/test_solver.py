"""End-to-end tests of the public SMT Solver facade (DPLL(T))."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    Add,
    And,
    App,
    BoolVar,
    CheckResult,
    Distinct,
    Eq,
    Function,
    Ge,
    Gt,
    Iff,
    Implies,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Model,
    Mul,
    Ne,
    Not,
    Or,
    Solver,
    Sub,
    uninterpreted_sort,
    Var,
)
from repro.smt.smtlib import guess_logic, to_smtlib
from repro.utils.errors import SolverError


class TestBasicChecks:
    def test_empty_solver_is_sat(self):
        assert Solver().check() is CheckResult.SAT

    def test_simple_arith_sat_with_model(self):
        s = Solver()
        x, y = IntVar("x"), IntVar("y")
        s.add(Lt(x, y), Le(y, IntVal(2)), Ge(x, IntVal(0)))
        assert s.check() is CheckResult.SAT
        m = s.model()
        assert 0 <= m.value_of("x") < m.value_of("y") <= 2

    def test_simple_arith_unsat(self):
        s = Solver()
        x = IntVar("x")
        s.add(Lt(x, IntVal(0)), Gt(x, IntVal(0)))
        assert s.check() is CheckResult.UNSAT

    def test_model_before_check_raises(self):
        with pytest.raises(SolverError):
            Solver().model()

    def test_model_after_unsat_raises(self):
        s = Solver()
        x = IntVar("x")
        s.add(Lt(x, x))
        s.check()
        with pytest.raises(SolverError):
            s.model()

    def test_add_requires_bool(self):
        s = Solver()
        with pytest.raises(SolverError):
            s.add(IntVar("x"))
        with pytest.raises(SolverError):
            s.add("not a term")

    def test_model_satisfies_assertions(self):
        s = Solver()
        x, y, z = IntVar("x"), IntVar("y"), IntVar("z")
        a = BoolVar("a")
        assertions = [
            Or(a, Lt(x, y)),
            Implies(a, Eq(z, Add(x, y))),
            Le(IntVal(0), x),
            Le(x, IntVal(5)),
            Lt(y, IntVal(4)),
        ]
        s.add(*assertions)
        assert s.check() is CheckResult.SAT
        m = s.model()
        for assertion in assertions:
            assert m.satisfies(assertion), f"model violates {assertion}"


class TestBooleanAndMixed:
    def test_pure_boolean(self):
        s = Solver()
        a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
        s.add(Or(a, b), Or(Not(a), c), Or(Not(b), c), Not(c))
        assert s.check() is CheckResult.UNSAT

    def test_boolean_drives_arithmetic(self):
        s = Solver()
        a = BoolVar("a")
        x = IntVar("x")
        s.add(Implies(a, Le(x, IntVal(0))), Implies(Not(a), Le(x, IntVal(1))), Ge(x, IntVal(5)))
        assert s.check() is CheckResult.UNSAT

    def test_ite_integer(self):
        s = Solver()
        x, y = IntVar("x"), IntVar("y")
        cond = Lt(x, IntVal(0))
        s.add(Eq(y, Ite(cond, IntVal(-1), IntVal(1))), Ge(x, IntVal(3)))
        assert s.check() is CheckResult.SAT
        assert s.model().value_of("y") == 1

    def test_distinct_pigeonhole(self):
        s = Solver()
        xs = [IntVar(f"x{i}") for i in range(5)]
        s.add(Distinct(xs))
        for x in xs:
            s.add(Ge(x, IntVal(0)), Lt(x, IntVal(5)))
        assert s.check() is CheckResult.SAT
        values = sorted(s.model().value_of(f"x{i}") for i in range(5))
        assert values == [0, 1, 2, 3, 4]

    def test_distinct_pigeonhole_unsat(self):
        s = Solver()
        xs = [IntVar(f"x{i}") for i in range(4)]
        s.add(Distinct(xs))
        for x in xs:
            s.add(Ge(x, IntVal(0)), Lt(x, IntVal(3)))
        assert s.check() is CheckResult.UNSAT

    def test_general_lia(self):
        s = Solver()
        x, y = IntVar("x"), IntVar("y")
        s.add(Eq(Add(Mul(3, x), Mul(5, y)), IntVal(31)), Ge(x, IntVal(0)), Ge(y, IntVal(0)))
        assert s.check() is CheckResult.SAT
        m = s.model()
        assert 3 * m.value_of("x") + 5 * m.value_of("y") == 31

    def test_lia_parity_unsat(self):
        s = Solver()
        x = IntVar("x")
        # 2x = 7 has no integer solution.
        s.add(Eq(Mul(2, x), IntVal(7)))
        assert s.check() is CheckResult.UNSAT


class TestEuf:
    def test_euf_transitivity(self):
        u = uninterpreted_sort("U")
        x, y, z = Var("x", u), Var("y", u), Var("z", u)
        s = Solver()
        s.add(Eq(x, y), Eq(y, z), Ne(x, z))
        assert s.check() is CheckResult.UNSAT

    def test_euf_function_congruence(self):
        u = uninterpreted_sort("U")
        f = Function("f", (u,), u)
        x, y = Var("x", u), Var("y", u)
        s = Solver()
        s.add(Eq(x, y), Ne(App(f, x), App(f, y)))
        assert s.check() is CheckResult.UNSAT

    def test_euf_sat(self):
        u = uninterpreted_sort("U")
        x, y = Var("x", u), Var("y", u)
        s = Solver()
        s.add(Ne(x, y))
        assert s.check() is CheckResult.SAT
        m = s.model()
        assert m.value_of("x") != m.value_of("y")


class TestPushPopAndAssumptions:
    def test_push_pop(self):
        s = Solver()
        x = IntVar("x")
        s.add(Ge(x, IntVal(0)))
        s.push()
        s.add(Lt(x, IntVal(0)))
        assert s.check() is CheckResult.UNSAT
        s.pop()
        assert s.check() is CheckResult.SAT

    def test_pop_without_push(self):
        with pytest.raises(SolverError):
            Solver().pop()

    def test_assumptions_do_not_persist(self):
        s = Solver()
        x = IntVar("x")
        s.add(Ge(x, IntVal(0)))
        assert s.check(Lt(x, IntVal(0))) is CheckResult.UNSAT
        assert s.check() is CheckResult.SAT
        assert len(s.assertions) == 1

    def test_is_valid(self):
        s = Solver()
        x, y = IntVar("x"), IntVar("y")
        assert s.is_valid(Implies(And(Le(x, y), Le(y, x)), Eq(x, y)))
        assert not s.is_valid(Le(x, y))

    def test_statistics_available(self):
        s = Solver()
        x = IntVar("x")
        s.add(Lt(x, IntVal(3)))
        s.check()
        stats = s.statistics()
        assert stats["atoms"] >= 1
        assert Solver().statistics() == {}


class TestSmtlibExport:
    def test_logic_guess(self):
        x, y = IntVar("x"), IntVar("y")
        assert guess_logic([Le(x, y)]) == "QF_IDL"
        assert guess_logic([Le(Mul(2, x), y)]) == "QF_LIA"
        u = uninterpreted_sort("U")
        assert guess_logic([Eq(Var("a", u), Var("b", u))]) == "QF_UF"

    def test_script_structure(self):
        s = Solver()
        x, y = IntVar("x"), IntVar("y")
        s.add(Lt(x, y))
        script = s.to_smtlib(comments=["figure 1 trace"])
        assert script.startswith("; figure 1 trace")
        assert "(set-logic QF_IDL)" in script
        assert "(declare-fun x () Int)" in script
        assert "(assert (< x y))" in script
        assert script.rstrip().endswith("(get-model)")

    def test_uninterpreted_declarations(self):
        u = uninterpreted_sort("Msg")
        f = Function("payload", (u,), u)
        a, b = Var("a", u), Var("b", u)
        script = to_smtlib([Eq(App(f, a), b)])
        assert "(declare-sort Msg 0)" in script
        assert "(declare-fun payload (Msg) Msg)" in script


# ---------------------------------------------------------------------------
# Property-based cross-check against brute force over a small finite domain
# ---------------------------------------------------------------------------

_NAMES = ["x", "y", "z"]


@st.composite
def small_formula(draw, depth=2):
    """Random mixed Boolean/difference-arithmetic formulas over x, y, z."""
    x, y, z = (IntVar(n) for n in _NAMES)
    int_terms = [x, y, z, IntVal(draw(st.integers(-2, 2)))]

    def atom():
        kind = draw(st.integers(0, 2))
        a = draw(st.sampled_from(int_terms))
        b = draw(st.sampled_from(int_terms))
        if kind == 0:
            return Le(a, b)
        if kind == 1:
            return Lt(a, b)
        return Eq(a, b)

    if depth == 0:
        return atom()
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return atom()
    if choice == 1:
        return Not(draw(small_formula(depth=depth - 1)))
    if choice == 2:
        return And(draw(small_formula(depth=depth - 1)), draw(small_formula(depth=depth - 1)))
    if choice == 3:
        return Or(draw(small_formula(depth=depth - 1)), draw(small_formula(depth=depth - 1)))
    return Implies(draw(small_formula(depth=depth - 1)), draw(small_formula(depth=depth - 1)))


def _finite_domain_sat(formula, lo=-3, hi=3):
    for values in itertools.product(range(lo, hi + 1), repeat=3):
        if Model(dict(zip(_NAMES, values))).eval(formula):
            return True
    return False


class TestSolverProperty:
    @settings(max_examples=60, deadline=None)
    @given(small_formula())
    def test_solver_agrees_with_finite_enumeration_when_sat(self, formula):
        """If brute force over [-3,3]^3 finds a model, the solver must say SAT,
        and the solver's own model must satisfy the formula."""
        s = Solver()
        s.add(formula)
        result = s.check()
        brute = _finite_domain_sat(formula)
        if brute:
            assert result is CheckResult.SAT
        if result is CheckResult.SAT:
            assert s.model().satisfies(formula)

    @settings(max_examples=40, deadline=None)
    @given(small_formula(), small_formula())
    def test_unsat_conjunction_is_order_independent(self, f1, f2):
        s1, s2 = Solver(), Solver()
        s1.add(f1, f2)
        s2.add(f2, f1)
        assert s1.check() == s2.check()
