"""Tests for linear normalisation and the theory solvers (IDL, LIA, EUF)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.linear import LinearExpr, LinearLe, atom_to_constraints, linearize
from repro.smt.sorts import INT, uninterpreted_sort
from repro.smt.terms import (
    Add,
    App,
    Eq,
    Function,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Mul,
    Neg,
    Sub,
    TRUE,
    Var,
)
from repro.smt.theory.euf import CongruenceClosure
from repro.smt.theory.idl import DifferenceLogicSolver
from repro.smt.theory.lia import LinearIntSolver
from repro.utils.errors import SolverError


class TestLinearExpr:
    def test_constant_and_variable(self):
        c = LinearExpr.constant(5)
        assert c.is_constant and c.const == 5
        v = LinearExpr.variable("x")
        assert v.variables() == ("x",)

    def test_add_merges_coefficients(self):
        a = LinearExpr.from_dict({"x": 2, "y": 1}, 3)
        b = LinearExpr.from_dict({"x": -2, "z": 4}, -1)
        result = a.add(b)
        assert result.as_dict() == {"y": 1, "z": 4}
        assert result.const == 2

    def test_scale_and_negate(self):
        a = LinearExpr.from_dict({"x": 2}, 3)
        assert a.scale(3).as_dict() == {"x": 6}
        assert a.negate().const == -3
        assert a.scale(0).is_constant

    def test_evaluate(self):
        a = LinearExpr.from_dict({"x": 2, "y": -1}, 1)
        assert a.evaluate({"x": 3, "y": 4}) == 3

    def test_str(self):
        a = LinearExpr.from_dict({"x": 1, "y": -1})
        assert "x" in str(a) and "y" in str(a)


class TestLinearize:
    def test_simple_forms(self):
        x, y = IntVar("x"), IntVar("y")
        expr = linearize(Add(Mul(2, x), Neg(y), IntVal(3)))
        assert expr.as_dict() == {"x": 2, "y": -1}
        assert expr.const == 3

    def test_sub(self):
        x, y = IntVar("x"), IntVar("y")
        expr = linearize(Sub(x, y))
        assert expr.as_dict() == {"x": 1, "y": -1}

    def test_nullary_app_is_variable(self):
        c = Function("c", (), INT)
        expr = linearize(App(c))
        assert expr.as_dict() == {"c": 1}

    def test_rejects_bool(self):
        with pytest.raises(SolverError):
            linearize(TRUE)

    def test_rejects_ite(self):
        x = IntVar("x")
        with pytest.raises(SolverError):
            linearize(Ite(Le(x, IntVal(0)), x, IntVal(0)))


class TestAtomToConstraints:
    def test_le_positive_and_negative(self):
        x, y = IntVar("x"), IntVar("y")
        atom = Le(x, y)
        (pos,) = atom_to_constraints(atom, True)
        assert pos.as_dict() if hasattr(pos, "as_dict") else True
        assert pos.expr.as_dict() == {"x": 1, "y": -1}
        assert pos.bound == 0
        (neg,) = atom_to_constraints(atom, False)
        assert neg.expr.as_dict() == {"x": -1, "y": 1}
        assert neg.bound == -1

    def test_lt(self):
        x, y = IntVar("x"), IntVar("y")
        (pos,) = atom_to_constraints(Lt(x, y), True)
        assert pos.bound == -1
        (neg,) = atom_to_constraints(Lt(x, y), False)
        assert neg.bound == 0

    def test_eq_positive_gives_two(self):
        x = IntVar("x")
        constraints = atom_to_constraints(Eq(x, IntVal(4)), True)
        assert len(constraints) == 2

    def test_eq_negative_rejected(self):
        x = IntVar("x")
        with pytest.raises(SolverError):
            atom_to_constraints(Eq(x, IntVal(4)), False)

    def test_constant_offsets_fold_into_bound(self):
        x = IntVar("x")
        (c,) = atom_to_constraints(Le(Add(x, IntVal(3)), IntVal(10)), True)
        assert c.expr.as_dict() == {"x": 1}
        assert c.bound == 7

    def test_negation_involution(self):
        c = LinearLe(LinearExpr.from_dict({"x": 1, "y": -1}), 5)
        assert c.negated().negated() == c

    def test_is_difference(self):
        assert LinearLe(LinearExpr.from_dict({"x": 1, "y": -1}), 0).is_difference
        assert LinearLe(LinearExpr.from_dict({"x": 1}), 0).is_difference
        assert LinearLe(LinearExpr.constant(0), 1).is_difference
        assert not LinearLe(LinearExpr.from_dict({"x": 2, "y": -1}), 0).is_difference
        assert not LinearLe(LinearExpr.from_dict({"x": 1, "y": 1}), 0).is_difference


def _diff(x, y, bound):
    """Constraint x - y <= bound."""
    return LinearLe(LinearExpr.from_dict({x: 1, y: -1}), bound)


def _upper(x, bound):
    return LinearLe(LinearExpr.from_dict({x: 1}), bound)


def _lower(x, bound):
    """x >= bound encoded as -x <= -bound."""
    return LinearLe(LinearExpr.from_dict({x: -1}), -bound)


class TestDifferenceLogic:
    def test_satisfiable_chain(self):
        solver = DifferenceLogicSolver()
        solver.assert_all([_diff("a", "b", -1), _diff("b", "c", -1)])
        result = solver.check()
        assert result.satisfiable
        model = result.model
        assert model["a"] - model["b"] <= -1
        assert model["b"] - model["c"] <= -1

    def test_negative_cycle_detected(self):
        solver = DifferenceLogicSolver()
        i1 = solver.assert_constraint(_diff("a", "b", -1))
        i2 = solver.assert_constraint(_diff("b", "a", -1))
        result = solver.check()
        assert not result.satisfiable
        assert set(result.conflict) == {i1, i2}

    def test_conflict_is_minimal_cycle(self):
        solver = DifferenceLogicSolver()
        solver.assert_constraint(_diff("x", "y", 5))  # irrelevant
        i1 = solver.assert_constraint(_diff("a", "b", 0))
        i2 = solver.assert_constraint(_diff("b", "c", 0))
        i3 = solver.assert_constraint(_diff("c", "a", -1))
        result = solver.check()
        assert not result.satisfiable
        assert set(result.conflict) == {i1, i2, i3}

    def test_bounds_via_zero_node(self):
        solver = DifferenceLogicSolver()
        solver.assert_all([_upper("x", 3), _lower("x", 3)])
        result = solver.check()
        assert result.satisfiable
        assert result.model["x"] == 3

    def test_infeasible_bounds(self):
        solver = DifferenceLogicSolver()
        solver.assert_all([_upper("x", 2), _lower("x", 5)])
        assert not solver.check().satisfiable

    def test_trivially_false_constant(self):
        solver = DifferenceLogicSolver()
        idx = solver.assert_constraint(LinearLe(LinearExpr.constant(0), -1))
        result = solver.check()
        assert not result.satisfiable
        assert result.conflict == [idx]

    def test_empty_is_sat(self):
        assert DifferenceLogicSolver().check().satisfiable

    def test_non_difference_rejected(self):
        solver = DifferenceLogicSolver()
        with pytest.raises(SolverError):
            solver.assert_constraint(
                LinearLe(LinearExpr.from_dict({"x": 2, "y": -1}), 0)
            )

    def test_model_satisfies_all_constraints(self):
        solver = DifferenceLogicSolver()
        constraints = [
            _diff("a", "b", 2),
            _diff("b", "c", -3),
            _diff("c", "a", 5),
            _upper("a", 10),
            _lower("c", -7),
        ]
        solver.assert_all(constraints)
        result = solver.check()
        assert result.satisfiable
        for constraint in constraints:
            assert constraint.holds(result.model)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4), st.integers(0, 4), st.integers(-3, 3)
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_agrees_with_lia_solver(self, triples):
        """IDL and the general LIA solver must agree on difference problems."""
        constraints = [
            _diff(f"v{a}", f"v{b}", c) for a, b, c in triples if a != b
        ]
        if not constraints:
            return
        idl = DifferenceLogicSolver()
        idl.assert_all(constraints)
        lia = LinearIntSolver()
        lia.assert_all(constraints)
        assert idl.check().satisfiable == lia.check().satisfiable


class TestLinearIntSolver:
    def test_satisfiable_general(self):
        solver = LinearIntSolver()
        # 2x + 3y <= 12, x >= 1, y >= 1
        solver.assert_all(
            [
                LinearLe(LinearExpr.from_dict({"x": 2, "y": 3}), 12),
                _lower("x", 1),
                _lower("y", 1),
            ]
        )
        result = solver.check()
        assert result.satisfiable
        x, y = result.model["x"], result.model["y"]
        assert 2 * x + 3 * y <= 12 and x >= 1 and y >= 1

    def test_rational_but_not_integer_feasible(self):
        # 2x >= 1 and 2x <= 1 forces x = 1/2: no integer solution.
        solver = LinearIntSolver()
        solver.assert_all(
            [
                LinearLe(LinearExpr.from_dict({"x": 2}), 1),
                LinearLe(LinearExpr.from_dict({"x": -2}), -1),
            ]
        )
        assert not solver.check().satisfiable

    def test_rationally_infeasible_with_explanation(self):
        solver = LinearIntSolver()
        i1 = solver.assert_constraint(_upper("x", 0))
        solver.assert_constraint(_upper("unrelated", 100))
        i3 = solver.assert_constraint(_lower("x", 1))
        result = solver.check()
        assert not result.satisfiable
        assert i1 in result.conflict and i3 in result.conflict

    def test_equality_style_pair(self):
        solver = LinearIntSolver()
        # x + y == 7 and x - y == 1  =>  x=4, y=3
        solver.assert_all(
            [
                LinearLe(LinearExpr.from_dict({"x": 1, "y": 1}), 7),
                LinearLe(LinearExpr.from_dict({"x": -1, "y": -1}), -7),
                LinearLe(LinearExpr.from_dict({"x": 1, "y": -1}), 1),
                LinearLe(LinearExpr.from_dict({"x": -1, "y": 1}), -1),
            ]
        )
        result = solver.check()
        assert result.satisfiable
        assert result.model["x"] == 4 and result.model["y"] == 3

    def test_empty_is_sat(self):
        assert LinearIntSolver().check().satisfiable

    def test_model_satisfies_constraints(self):
        solver = LinearIntSolver()
        constraints = [
            LinearLe(LinearExpr.from_dict({"a": 3, "b": -2}), 7),
            LinearLe(LinearExpr.from_dict({"a": -1, "b": -1}), -2),
            _upper("a", 50),
            _upper("b", 50),
        ]
        solver.assert_all(constraints)
        result = solver.check()
        assert result.satisfiable
        for constraint in constraints:
            assert constraint.holds(result.model)


class TestCongruenceClosure:
    def test_transitivity(self):
        x, y, z = (Var(n, uninterpreted_sort("U")) for n in "xyz")
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.assert_equal(y, z)
        cc.assert_distinct(x, z)
        result = cc.check()
        assert not result.satisfiable

    def test_congruence_of_applications(self):
        u = uninterpreted_sort("U")
        f = Function("f", (u,), u)
        x, y = Var("x", u), Var("y", u)
        cc = CongruenceClosure()
        cc.assert_equal(x, y)
        cc.assert_distinct(App(f, x), App(f, y))
        assert not cc.check().satisfiable

    def test_satisfiable_distinct(self):
        u = uninterpreted_sort("U")
        x, y = Var("x", u), Var("y", u)
        cc = CongruenceClosure()
        cc.assert_distinct(x, y)
        result = cc.check()
        assert result.satisfiable
        assert result.model["x"] != result.model["y"]

    def test_nested_congruence(self):
        u = uninterpreted_sort("U")
        f = Function("f", (u,), u)
        x = Var("x", u)
        # f(f(f(x))) = x and f(x) = x implies f(f(x)) = x etc.
        cc = CongruenceClosure()
        fx = App(f, x)
        ffx = App(f, fx)
        fffx = App(f, ffx)
        cc.assert_equal(fffx, x)
        cc.assert_equal(fx, x)
        cc.assert_distinct(ffx, x)
        assert not cc.check().satisfiable

    def test_conflict_minimisation_drops_irrelevant(self):
        u = uninterpreted_sort("U")
        a, b, c, d = (Var(n, u) for n in "abcd")
        cc = CongruenceClosure()
        irrelevant = cc.assert_equal(c, d)
        i1 = cc.assert_equal(a, b)
        i2 = cc.assert_distinct(a, b)
        result = cc.check()
        assert not result.satisfiable
        assert irrelevant not in result.conflict
        assert set(result.conflict) == {i1, i2}

    def test_sort_mismatch_rejected(self):
        u1, u2 = uninterpreted_sort("A"), uninterpreted_sort("B")
        with pytest.raises(SolverError):
            CongruenceClosure().assert_equal(Var("x", u1), Var("y", u2))

    def test_empty_is_sat(self):
        assert CongruenceClosure().check().satisfiable
