"""Unit tests for the trail-backed incremental theory solvers.

Each theory exposes the same online protocol — ``assert_lit`` (veto with a
conflict), ``retract_to`` (undo to a trail prefix) and ``explain``
(antecedents of an entailed literal) — and these tests pin down the undo
correctness and explanation minimality the online DPLL(T) engine relies on.
"""

import pytest

from repro.smt.linear import LinearExpr, LinearLe
from repro.smt.sorts import uninterpreted_sort
from repro.smt.terms import App, Function, Var
from repro.smt.theory.euf import IncrementalCongruenceClosure
from repro.smt.theory.idl import IncrementalDifferenceLogic
from repro.smt.theory.lia import IncrementalLinearInt
from repro.utils.errors import SolverError


def _diff(x, y, bound):
    """Constraint x - y <= bound."""
    return LinearLe(LinearExpr.from_dict({x: 1, y: -1}), bound)


def _upper(x, bound):
    return LinearLe(LinearExpr.from_dict({x: 1}), bound)


def _lower(x, bound):
    """x >= bound encoded as -x <= -bound."""
    return LinearLe(LinearExpr.from_dict({x: -1}), -bound)


class TestIncrementalDifferenceLogic:
    def test_consistent_chain_and_model(self):
        idl = IncrementalDifferenceLogic()
        assert idl.assert_lit(1, [_diff("a", "b", -1)]) is None
        assert idl.assert_lit(2, [_diff("b", "c", -1)]) is None
        model = idl.model()
        assert model["a"] - model["b"] <= -1
        assert model["b"] - model["c"] <= -1

    def test_negative_cycle_conflict_is_the_cycle(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_diff("x", "y", 5)])  # irrelevant
        assert idl.assert_lit(2, [_diff("a", "b", 0)]) is None
        assert idl.assert_lit(3, [_diff("b", "c", 0)]) is None
        conflict = idl.assert_lit(4, [_diff("c", "a", -1)])
        assert conflict == [2, 3, 4]

    def test_retract_restores_consistency_and_potentials(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_diff("a", "b", -1)])
        snapshot = dict(idl._pot)
        conflict = idl.assert_lit(2, [_diff("b", "a", -1)])
        assert conflict == [1, 2]
        idl.retract_to(1)
        assert idl.num_asserted == 1
        assert dict(idl._pot) == snapshot
        # The opposite direction is fine once the cycle edge is gone.
        assert idl.assert_lit(3, [_diff("b", "a", 1)]) is None

    def test_retract_to_zero_then_reassert(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_upper("x", 2)])
        idl.assert_lit(2, [_lower("x", 5)])  # hmm: conflict? 2 < 5
        idl.retract_to(0)
        assert idl.num_asserted == 0
        assert idl.assert_lit(5, [_lower("x", 5)]) is None
        assert idl.assert_lit(6, [_upper("x", 7)]) is None
        model = idl.model()
        assert 5 <= model["x"] <= 7

    def test_infeasible_bounds_conflict(self):
        idl = IncrementalDifferenceLogic()
        assert idl.assert_lit(1, [_upper("x", 2)]) is None
        conflict = idl.assert_lit(2, [_lower("x", 5)])
        assert conflict == [1, 2]

    def test_constant_false_conflicts_alone(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_diff("a", "b", 3)])
        conflict = idl.assert_lit(2, [LinearLe(LinearExpr.constant(0), -1)])
        assert conflict == [2]

    def test_explain_entailed_literal(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_diff("a", "b", -1)])
        idl.assert_lit(2, [_diff("b", "c", -1)])
        # a - c <= -2 follows from the chain.
        assert idl.assert_lit(3, [_diff("a", "c", -2)]) is None
        assert idl.explain(3) == [1, 2]

    def test_explain_rejects_unentailed(self):
        idl = IncrementalDifferenceLogic()
        idl.assert_lit(1, [_diff("a", "b", -1)])
        idl.assert_lit(2, [_diff("c", "d", -1)])
        with pytest.raises(SolverError):
            idl.explain(2)

    def test_negated_literals_are_valid_tags(self):
        idl = IncrementalDifferenceLogic()
        assert idl.assert_lit(-7, [_upper("x", 0)]) is None
        conflict = idl.assert_lit(9, [_lower("x", 1)])
        assert conflict == [-7, 9]


class TestIncrementalLinearInt:
    def test_rational_conflict_caught_on_assert(self):
        lia = IncrementalLinearInt()
        assert lia.assert_lit(1, [_upper("x", 0)]) is None
        assert lia.assert_lit(2, [_upper("unrelated", 100)]) is None
        conflict = lia.assert_lit(3, [_lower("x", 1)])
        assert conflict is not None
        assert 1 in conflict and 3 in conflict and 2 not in conflict

    def test_integer_infeasibility_deferred_to_final_check(self):
        lia = IncrementalLinearInt()
        # 2x >= 1 and 2x <= 1 forces x = 1/2: rationally fine, no integer.
        assert lia.assert_lit(1, [LinearLe(LinearExpr.from_dict({"x": 2}), 1)]) is None
        assert (
            lia.assert_lit(2, [LinearLe(LinearExpr.from_dict({"x": -2}), -1)]) is None
        )
        result = lia.final_check()
        assert not result.satisfiable
        assert set(result.conflict) <= {1, 2}

    def test_retract_then_final_check_sat(self):
        lia = IncrementalLinearInt()
        lia.assert_lit(1, [LinearLe(LinearExpr.from_dict({"x": 2, "y": 3}), 12)])
        lia.assert_lit(2, [_lower("x", 1)])
        lia.assert_lit(3, [_lower("y", 1)])
        lia.assert_lit(4, [_lower("x", 100)])
        assert not lia.final_check().satisfiable
        lia.retract_to(3)
        result = lia.final_check()
        assert result.satisfiable
        x, y = result.model["x"], result.model["y"]
        assert 2 * x + 3 * y <= 12 and x >= 1 and y >= 1

    def test_constant_false_conflicts_alone(self):
        lia = IncrementalLinearInt()
        lia.assert_lit(1, [_upper("x", 3)])
        assert lia.assert_lit(2, [LinearLe(LinearExpr.constant(0), -1)]) == [2]

    def test_explain_entailed_literal(self):
        lia = IncrementalLinearInt()
        lia.assert_lit(1, [_upper("x", 0)])
        lia.assert_lit(2, [_upper("other", 50)])
        assert lia.assert_lit(3, [_upper("x", 5)]) is None  # implied by 1
        assert lia.explain(3) == [1]

    def test_explain_rejects_unentailed(self):
        lia = IncrementalLinearInt()
        lia.assert_lit(1, [_upper("x", 0)])
        lia.assert_lit(2, [_upper("y", 0)])
        with pytest.raises(SolverError):
            lia.explain(2)

    def test_bounded_recheck_skips_large_trails(self):
        lia = IncrementalLinearInt(recheck_rows_limit=2)
        assert lia.assert_lit(1, [_upper("x", 0)]) is None
        assert lia.assert_lit(2, [_upper("y", 0)]) is None
        # Beyond the bound the per-assert recheck is skipped: the conflict
        # surfaces at final_check instead of at assert time.
        assert lia.assert_lit(3, [_lower("x", 1)]) is None
        result = lia.final_check()
        assert not result.satisfiable


def _u_vars():
    u = uninterpreted_sort("U")
    return u, [Var(n, u) for n in "abcd"]


class TestIncrementalCongruenceClosure:
    def test_transitivity_conflict_is_minimal(self):
        _, (a, b, c, d) = _u_vars()
        cc = IncrementalCongruenceClosure()
        assert cc.assert_lit(1, c, d, True) is None  # irrelevant
        assert cc.assert_lit(2, a, b, True) is None
        assert cc.assert_lit(3, b, c, True) is None
        conflict = cc.assert_lit(4, a, c, False)
        assert conflict == [2, 3, 4]

    def test_congruence_conflict(self):
        u, (a, b, _, _) = _u_vars()
        f = Function("f", (u,), u)
        cc = IncrementalCongruenceClosure()
        assert cc.assert_lit(1, a, b, True) is None
        conflict = cc.assert_lit(2, App(f, a), App(f, b), False)
        assert conflict == [1, 2]

    def test_retract_unwinds_unions_and_diseqs(self):
        _, (a, b, c, _) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.assert_lit(1, a, b, True)
        cc.assert_lit(2, b, c, True)
        assert cc.assert_lit(3, a, c, False) is not None
        cc.retract_to(1)  # only a = b remains
        assert cc.num_asserted == 1
        assert cc.assert_lit(4, a, c, False) is None  # now consistent
        # And the disequality participates in conflicts again.
        conflict = cc.assert_lit(5, b, c, True)
        assert conflict == [1, 4, 5]

    def test_entailed_propagates_registered_atoms(self):
        _, (a, b, c, _) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.register_atom(10, a, c)
        cc.assert_lit(1, a, b, True)
        assert cc.entailed() == []
        cc.assert_lit(2, b, c, True)
        assert cc.entailed() == [10]

    def test_entailed_negative_via_disequality(self):
        _, (a, b, c, d) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.register_atom(10, b, d)
        cc.assert_lit(1, a, b, True)
        cc.assert_lit(2, c, d, True)
        cc.assert_lit(3, a, c, False)
        assert cc.entailed() == [-10]

    def test_explain_positive_is_minimal(self):
        _, (a, b, c, d) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.register_atom(10, a, c)
        cc.assert_lit(1, c, d, True)  # irrelevant
        cc.assert_lit(2, a, b, True)
        cc.assert_lit(3, b, c, True)
        assert cc.explain(10) == [2, 3]

    def test_explain_respects_prefix_limit(self):
        _, (a, b, c, _) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.register_atom(10, a, c)
        cc.assert_lit(1, a, b, True)
        cc.assert_lit(2, b, c, True)
        # With only the first assertion visible the atom is not entailed.
        with pytest.raises(SolverError):
            cc.explain(10, limit=1)
        assert cc.explain(10, limit=2) == [1, 2]

    def test_explain_negative_includes_disequality(self):
        _, (a, b, c, d) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.register_atom(10, b, d)
        cc.assert_lit(1, a, b, True)
        cc.assert_lit(2, c, d, True)
        cc.assert_lit(-3, a, c, False)
        assert cc.explain(-10) == [-3, 1, 2]

    def test_model_separates_classes(self):
        _, (a, b, c, _) = _u_vars()
        cc = IncrementalCongruenceClosure()
        cc.assert_lit(1, a, b, True)
        cc.assert_lit(2, a, c, False)
        model = cc.model()
        assert model["a"] == model["b"] != model["c"]

    def test_sort_mismatch_rejected(self):
        u1, u2 = uninterpreted_sort("A"), uninterpreted_sort("B")
        cc = IncrementalCongruenceClosure()
        with pytest.raises(SolverError):
            cc.assert_lit(1, Var("x", u1), Var("y", u2), True)
