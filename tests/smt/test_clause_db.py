"""Tests for learned-clause database reduction (``SatSolver.reduce_db``).

Three layers of guarantees:

* **structural invariants** — reason-locked, binary, glue (LBD <= 3) and
  pinned theory-lemma clauses survive a reduction; victims are really
  unlinked from the watch lists; the surviving clauses keep the two-watch
  attachment invariant;
* **semantic equivalence** — verdicts and models are identical under the
  most aggressive reduction possible (``reduce_base=1``) on random CNFs
  (against a truth table) and on the 300-formula mixed-theory differential
  corpus shared with the online/offline suite;
* **incremental soundness** — assumption and push/pop ``check()`` streams
  on one engine agree with an unreduced engine after arbitrarily many
  reductions.
"""

import itertools
import random

import pytest

from test_online_offline import _random_assertions

from repro.smt.dpllt import CheckResult, DpllTEngine, IncrementalDpllTEngine
from repro.smt.sat import SatResult, SatSolver, TheoryListener


def _random_clauses(rng, num_vars, num_clauses, width=None):
    clauses = []
    for _ in range(num_clauses):
        clause_width = width if width is not None else rng.randint(1, 4)
        clauses.append(
            [
                rng.randint(1, num_vars) * rng.choice((1, -1))
                for _ in range(clause_width)
            ]
        )
    return clauses


def _brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def _watch_occurrences(solver):
    """Watch-list occurrence count per cref (binary inline entries included)."""
    counts = {}
    for var in range(1, solver.num_vars + 1):
        for lit in (var, -var):
            for ref, _blocker in solver.watch_entries(lit):
                cref = -ref if ref < 0 else ref
                counts[cref] = counts.get(cref, 0) + 1
    return counts


def _lits_multiset(solver, refs):
    """Clause literal tuples (order preserved by compaction) as a multiset."""
    counts = {}
    for ref in refs:
        key = tuple(solver.clause_lits(ref))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _locked_refs(solver):
    """Crefs pinned by being the reason of a trail literal."""
    return {
        solver.reason_ref(abs(lit))
        for lit in solver._trail
        if solver.reason_ref(abs(lit)) > 0
    }


class TestReductionInvariants:
    def _solved_solver(self, reduce_db=False, **kwargs):
        """A solver mid-lifetime: solved once (SAT, so the trail is full and
        reason-locked learned clauses exist), rich learned population."""
        solver = SatSolver(reduce_db=reduce_db, **kwargs)
        rng = random.Random(6)
        solver.ensure_vars(60)
        solver.add_clauses(_random_clauses(rng, 60, 252, width=3))
        assert solver.solve() is SatResult.SAT
        return solver

    def test_binary_and_glue_clauses_survive(self):
        solver = self._solved_solver()
        learned = solver.learned_refs()
        assert learned, "workload produced no learned clauses"
        protected = [
            ref
            for ref in learned
            if solver.clause_info(ref)["size"] <= 2
            or solver.clause_info(ref)["lbd"] <= 3
        ]
        protected_lits = _lits_multiset(solver, protected)
        solver.reduce_db()
        survivors = _lits_multiset(solver, solver.learned_refs())
        for key, count in protected_lits.items():
            assert survivors.get(key, 0) >= count, key

    def test_reason_locked_clauses_survive(self):
        solver = self._solved_solver()
        learned_locked = _locked_refs(solver) & set(solver.learned_refs())
        locked_lits = _lits_multiset(solver, learned_locked)
        solver.reduce_db()
        survivors = _lits_multiset(solver, solver.learned_refs())
        for key, count in locked_lits.items():
            assert survivors.get(key, 0) >= count, key
        # Compaction must have remapped the reason crefs along with the
        # records: every locked reason still dereferences to a live clause.
        for ref in _locked_refs(solver):
            info = solver.clause_info(ref)
            assert info["size"] >= 2

    def test_victims_unlinked_and_watch_invariant_kept(self):
        solver = self._solved_solver()
        before = len(solver.learned_refs())
        deleted = solver.reduce_db()
        after = len(solver.learned_refs())
        assert deleted == before - after
        counts = _watch_occurrences(solver)
        live = set(solver.problem_refs()) | set(solver.learned_refs())
        # No dangling refs: everything watched is a live clause.
        assert set(counts) <= live, "deleted clause still watched"
        # Every live clause (problem or learned) is watched exactly twice.
        for ref in sorted(live):
            assert counts.get(ref, 0) == 2, solver.clause_lits(ref)
        # Blockers name literals of their own clause (the fast path relies
        # on this: a true blocker proves the clause satisfied).
        for var in range(1, solver.num_vars + 1):
            for lit in (var, -var):
                for ref, blocker in solver.watch_entries(lit):
                    cref = -ref if ref < 0 else ref
                    assert blocker in solver.clause_lits(cref)

    def test_reduction_halves_the_deletable_population(self):
        solver = self._solved_solver()
        locked = _locked_refs(solver)
        deletable = [
            ref
            for ref in solver.learned_refs()
            if solver.clause_info(ref)["size"] > 2
            and solver.clause_info(ref)["lbd"] > 3
            and not solver.clause_info(ref)["pinned"]
            and ref not in locked
        ]
        deleted = solver.reduce_db()
        assert deleted == len(deletable) // 2
        assert solver.stats.clauses_deleted == deleted
        assert solver.stats.reduce_db_rounds == (1 if deleted else 0)
        if deleted:
            assert solver.stats.compactions >= 1
            assert solver.arena_words >= solver.arena_live_words()

    def test_solver_still_correct_after_manual_reduction(self):
        rng = random.Random(13)
        for seed in range(30):
            rng = random.Random(1000 + seed)
            num_vars = rng.randint(4, 9)
            clauses = _random_clauses(rng, num_vars, rng.randint(10, 40))
            solver = SatSolver(reduce_db=True, reduce_base=1)
            solver.ensure_vars(num_vars)
            solver.add_clauses(clauses)
            result = solver.solve()
            expected = _brute_force_sat(num_vars, clauses)
            assert (result is SatResult.SAT) == expected, f"seed {seed}"
            if result is SatResult.SAT:
                model = solver.model()
                for clause in clauses:
                    assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    def test_pinned_theory_lemmas_survive_aggressive_reduction(self):
        """With pin_theory_lemmas=True, clauses learned from theory
        conflicts stay through reductions that delete everything else."""

        class Exclusion(TheoryListener):
            """Vetoes any assignment containing two specific true literals."""

            def __init__(self, pairs):
                self.pairs = pairs
                self.trail = []

            def on_assert(self, lit):
                self.trail.append(lit)
                present = set(self.trail)
                for a, b in self.pairs:
                    if lit in (a, b) and a in present and b in present:
                        first, second = (a, b) if self.trail.index(a) < self.trail.index(b) else (b, a)
                        return [first, second]
                return None

            def on_backjump(self, kept):
                del self.trail[kept:]

        solver = SatSolver(reduce_db=True, reduce_base=1, pin_theory_lemmas=True)
        vars_ = [solver.new_var() for _ in range(12)]
        pairs = [(vars_[i], vars_[i + 1]) for i in range(0, 10, 2)]
        solver.set_theory(Exclusion(pairs))
        for a, b in pairs:
            solver.add_clause([a, b])  # force one of each excluded pair true
        rng = random.Random(3)
        solver.add_clauses(_random_clauses(rng, 12, 30))
        solver.solve()
        if solver.learned_refs():
            pinned = _lits_multiset(
                solver,
                [
                    ref
                    for ref in solver.learned_refs()
                    if solver.clause_info(ref)["pinned"]
                ],
            )
            solver.reduce_db()
            survivors = _lits_multiset(solver, solver.learned_refs())
            for key, count in pinned.items():
                assert survivors.get(key, 0) >= count, key


class TestReductionDifferential:
    """Aggressive reduction must be invisible in verdicts and models."""

    @pytest.mark.parametrize("chunk", range(10))
    def test_corpus_verdicts_and_models_match_unreduced(self, chunk):
        per_chunk = 30
        for index in range(per_chunk):
            seed = chunk * per_chunk + index
            rng = random.Random(1_000 + seed)  # the online/offline corpus seeds
            assertions, has_apps = _random_assertions(rng)

            reduced = DpllTEngine(assertions, reduce_base=1)
            baseline = DpllTEngine(assertions, reduce_db=False)
            verdict_reduced = reduced.check()
            verdict_baseline = baseline.check()
            assert verdict_reduced == verdict_baseline, f"seed {seed}"
            assert verdict_reduced is not CheckResult.UNKNOWN
            if verdict_reduced is CheckResult.SAT and not has_apps:
                model = reduced.model()
                for assertion in assertions:
                    assert model.satisfies(assertion), (
                        f"seed {seed}: reduced-engine model violates {assertion}"
                    )

    def test_incremental_streams_stay_sound_after_reductions(self):
        """Assumption and push/pop streams on one engine agree with an
        unreduced engine — learned-state garbage collection between checks
        must never change an answer."""
        for seed in range(12):
            rng = random.Random(21_000 + seed)
            base, _ = _random_assertions(rng)
            scoped, _ = _random_assertions(rng)
            probes, _ = _random_assertions(random.Random(22_000 + seed))

            reduced = IncrementalDpllTEngine(reduce_base=1)
            baseline = IncrementalDpllTEngine(reduce_db=False)
            for engine in (reduced, baseline):
                for assertion in base:
                    engine.add(assertion)
            assert reduced.check() == baseline.check(), f"seed {seed} (base)"
            for probe in probes[:2]:
                assert reduced.check(probe) == baseline.check(probe), (
                    f"seed {seed} (assumption)"
                )
            for engine in (reduced, baseline):
                engine.push()
                for assertion in scoped:
                    engine.add(assertion)
            assert reduced.check() == baseline.check(), f"seed {seed} (scoped)"
            for engine in (reduced, baseline):
                engine.pop()
            assert reduced.check() == baseline.check(), f"seed {seed} (popped)"

    def test_reduction_rounds_actually_happen_on_long_streams(self):
        """The aggressive engine really reduces (the differential above
        would be vacuous otherwise) and keeps fewer clauses live.  The
        stream is difference-logic only: scoped delivery-window questions
        whose UNSAT proofs are conflict-rich but bounded."""
        from repro.smt.terms import IntVal, IntVar, Le, Lt, Or

        clocks = [IntVar(f"c{i}") for i in range(5)]
        engine = IncrementalDpllTEngine(reduce_base=1)
        baseline = IncrementalDpllTEngine(reduce_db=False)
        for target in (engine, baseline):
            for i in range(5):
                for j in range(i + 1, 5):
                    target.add(Or(Lt(clocks[i], clocks[j]), Lt(clocks[j], clocks[i])))
            for clock in clocks:
                target.add(Le(IntVal(0), clock))
        rounds = 0
        for offset in range(12):
            for target in (engine, baseline):
                target.push()
                for clock in clocks:
                    target.add(Le(IntVal(offset), clock))
                    target.add(Le(clock, IntVal(offset + 3)))
                assert target.check() is CheckResult.UNSAT
                target.pop()
            rounds += engine.stats.reduce_db_rounds
        assert rounds > 0
        assert (
            engine.stats.max_live_learned < baseline.stats.max_live_learned
        )
