"""Differential tests: online DPLL(T) versus the offline reference loop.

The online engine (incremental theories riding the SAT trail) and the
offline engine (complete model, batch theory check, blocking clause) decide
the same theory, so their verdicts must be *identical* on every input.
This suite drives both engines over

* 300 seeded random formulas mixing EUF, IDL and general-LIA atoms under
  arbitrary Boolean structure (including negations, implications and ite),
* a corpus of ``arith_heavy`` random MCAPI programs pushed through the full
  verification stack,

and additionally validates every SAT model by evaluation, so agreement
cannot be reached by both engines being wrong in the same direction on
satisfiable inputs.
"""

import random

import pytest

from repro.smt.dpllt import CheckResult, DpllTEngine, IncrementalDpllTEngine
from repro.smt.sorts import uninterpreted_sort
from repro.smt.terms import (
    Add,
    And,
    App,
    BoolVar,
    Eq,
    Function,
    Iff,
    Implies,
    IntVal,
    IntVar,
    Ite,
    Le,
    Lt,
    Mul,
    Not,
    Or,
    Term,
    Var,
)
from repro.verification.session import verify_many
from repro.workloads.generators import random_program

NUM_FORMULAS = 300


def _random_assertions(rng: random.Random):
    """A small random assertion set mixing EUF / IDL / LIA atoms.

    Returns ``(assertions, has_apps)`` — formulas containing non-nullary
    applications cannot be model-checked by evaluation.
    """
    int_vars = [IntVar(f"x{i}") for i in range(rng.randint(2, 4))]
    u = uninterpreted_sort("U")
    u_vars = [Var(f"u{i}", u) for i in range(rng.randint(2, 3))]
    f = Function("f", (u,), u)
    has_apps = False

    def int_atom() -> Term:
        shape = rng.choice(["diff", "diff", "bound", "lia", "eq"])
        a, b = rng.sample(int_vars, 2)
        c = IntVal(rng.randint(-4, 4))
        if shape == "diff":
            op = Lt if rng.random() < 0.5 else Le
            return op(a, Add(b, c))
        if shape == "bound":
            return Le(a, c)
        if shape == "lia":
            # Non-unit coefficient: forces the general LIA lane.
            return Le(Add(Mul(2, a), b), c)
        return Eq(a, Add(b, c))

    def euf_atom() -> Term:
        nonlocal has_apps
        lhs, rhs = rng.choice(u_vars), rng.choice(u_vars)
        if rng.random() < 0.4:
            lhs = App(f, lhs)
            has_apps = True
        if rng.random() < 0.25:
            rhs = App(f, rhs)
            has_apps = True
        return Eq(lhs, rhs)

    def atom() -> Term:
        return euf_atom() if rng.random() < 0.35 else int_atom()

    def formula(depth: int) -> Term:
        if depth <= 0:
            leaf = atom()
            return Not(leaf) if rng.random() < 0.4 else leaf
        shape = rng.choice(["and", "or", "not", "implies", "ite"])
        if shape == "and":
            return And([formula(depth - 1) for _ in range(rng.randint(2, 3))])
        if shape == "or":
            return Or([formula(depth - 1) for _ in range(rng.randint(2, 3))])
        if shape == "not":
            return Not(formula(depth - 1))
        if shape == "implies":
            return Implies(formula(depth - 1), formula(depth - 1))
        return Ite(formula(depth - 1), formula(depth - 1), formula(depth - 1))

    assertions = [formula(rng.randint(1, 3)) for _ in range(rng.randint(1, 4))]
    return assertions, has_apps


class TestFormulaDifferential:
    @pytest.mark.parametrize("chunk", range(10))
    def test_online_matches_offline_on_random_formulas(self, chunk):
        """Verdict equality over NUM_FORMULAS seeded mixed-theory formulas."""
        per_chunk = NUM_FORMULAS // 10
        for index in range(per_chunk):
            seed = chunk * per_chunk + index
            rng = random.Random(1_000 + seed)
            assertions, has_apps = _random_assertions(rng)

            online = DpllTEngine(assertions, theory_mode="online")
            offline = DpllTEngine(assertions, theory_mode="offline")
            verdict_online = online.check()
            verdict_offline = offline.check()
            assert verdict_online == verdict_offline, (
                f"seed {seed}: online={verdict_online} offline={verdict_offline} "
                f"on {[str(a) for a in assertions]}"
            )
            assert verdict_online is not CheckResult.UNKNOWN
            if verdict_online is CheckResult.SAT and not has_apps:
                model = online.model()
                for assertion in assertions:
                    assert model.satisfies(assertion), (
                        f"seed {seed}: online model {model} violates {assertion}"
                    )

    def test_partial_conflicts_only_happen_online(self):
        """The offline loop never sees a partial assignment; the online
        engine's whole point is that it usually conflicts on one."""
        rng = random.Random(42)
        online_partial = 0
        for _ in range(40):
            assertions, _ = _random_assertions(rng)
            engine = DpllTEngine(assertions, theory_mode="online")
            engine.check()
            online_partial += engine.stats.theory_partial_conflicts
            offline = DpllTEngine(assertions, theory_mode="offline")
            offline.check()
            assert offline.stats.theory_partial_conflicts == 0
        assert online_partial > 0

    def test_iteration_budget_binds_theory_rounds_not_boolean_search(self):
        """max_iterations is a *theory* budget in both modes: a Boolean-hard
        instance with zero theory atoms must be decided under a budget that
        its Boolean conflict count exceeds (regression: online briefly
        treated the budget as a total SAT conflict limit)."""
        pigeons, holes = 6, 5
        v = {
            (p, h): BoolVar(f"p{p}h{h}")
            for p in range(pigeons)
            for h in range(holes)
        }
        terms = [Or([v[(p, h)] for h in range(holes)]) for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    terms.append(Or(Not(v[(p1, h)]), Not(v[(p2, h)])))
        for mode in ("online", "offline"):
            engine = DpllTEngine(terms, max_iterations=50, theory_mode=mode)
            assert engine.check() is CheckResult.UNSAT, mode
            assert engine.stats.sat_conflicts > 50, mode

    def test_tiny_budget_still_yields_unknown_on_theory_conflicts(self):
        xs = [IntVar(f"b{i}") for i in range(6)]
        terms = [
            Or(Lt(xs[i], xs[j]), Lt(xs[j], xs[i]))
            for i in range(6)
            for j in range(i + 1, 6)
        ]
        terms += [Le(IntVal(0), x) for x in xs]
        terms += [Le(x, IntVal(4)) for x in xs]
        engine = DpllTEngine(terms, max_iterations=3, theory_mode="online")
        assert engine.check() is CheckResult.UNKNOWN

    def test_online_engine_propagates_euf_literals(self):
        """x=y and y=z must propagate x=z instead of deciding it."""
        u = uninterpreted_sort("U")
        x, y, z = (Var(n, u) for n in "xyz")
        engine = DpllTEngine(
            [
                Eq(x, y),
                Eq(y, z),
                Or(Not(Eq(x, z)), Eq(x, y)),  # mentions the x=z atom
            ]
        )
        assert engine.check() is CheckResult.SAT
        assert engine.stats.theory_propagations > 0


class TestIncrementalEngineDifferential:
    def test_assumption_checks_agree(self):
        """Scoped assumption streams agree between the two modes."""
        for seed in range(40):
            rng = random.Random(7_000 + seed)
            assertions, _ = _random_assertions(rng)
            probe_rng = random.Random(8_000 + seed)
            probes, _ = _random_assertions(probe_rng)

            online = IncrementalDpllTEngine(theory_mode="online")
            offline = IncrementalDpllTEngine(theory_mode="offline")
            for engine in (online, offline):
                for assertion in assertions:
                    engine.add(assertion)
            assert online.check() == offline.check(), f"seed {seed} (base)"
            for probe in probes[:2]:
                assert online.check(probe) == offline.check(probe), (
                    f"seed {seed} (assumption {probe})"
                )
            # Assumptions must not have leaked into the assertion set.
            assert online.check() == offline.check(), f"seed {seed} (re-base)"

    def test_push_pop_streams_agree(self):
        for seed in range(25):
            rng = random.Random(11_000 + seed)
            base, _ = _random_assertions(rng)
            scoped, _ = _random_assertions(rng)

            online = IncrementalDpllTEngine(theory_mode="online")
            offline = IncrementalDpllTEngine(theory_mode="offline")
            for engine in (online, offline):
                for assertion in base:
                    engine.add(assertion)
            assert online.check() == offline.check()
            for engine in (online, offline):
                engine.push()
                for assertion in scoped:
                    engine.add(assertion)
            assert online.check() == offline.check(), f"seed {seed} (scoped)"
            for engine in (online, offline):
                engine.pop()
            assert online.check() == offline.check(), f"seed {seed} (popped)"


class TestProgramDifferential:
    def test_arith_heavy_programs_agree_end_to_end(self):
        """The full verification stack (encode -> session -> backend) gives
        identical verdicts in both theory modes on an arith-heavy corpus —
        the workload class whose assertions actually stress IDL chains and
        the LIA migration path."""
        programs = [
            random_program(
                random.Random(20_000 + seed),
                arith_heavy=True,
                name=f"arith_heavy_{seed}",
            )
            for seed in range(40)
        ]
        online = verify_many(programs, theory_mode="online")
        offline = verify_many(programs, theory_mode="offline")
        assert [r.verdict for r in online] == [r.verdict for r in offline]
        # The corpus must actually contain both outcomes to mean anything.
        assert len({r.verdict for r in online}) > 1
