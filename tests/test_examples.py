"""Smoke tests: every example script must run cleanly and print the expected
headline results (these double as end-to-end integration tests of the public
API exactly as a new user would exercise it)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return result.stdout


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "tool_comparison.py",
        "racy_scatter_gather.py",
        "nonblocking_and_smtlib.py",
        "deadlock_detection.py",
    ],
)
def test_example_exists(script):
    assert (EXAMPLES_DIR / script).is_file()


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_every_example_runs_clean(script):
    """Docs code must not rot: every script under examples/ — including any
    added after this test was written — runs in a subprocess and exits 0."""
    _run_example(script)  # check=True raises on a nonzero exit


def test_quickstart_output():
    out = _run_example("quickstart.py")
    assert "verdict: violation" in out
    assert "replay tripped the program assertion : True" in out


def test_tool_comparison_output():
    out = _run_example("tool_comparison.py")
    assert "this work (delays modelled)" in out
    # our tool admits 2 pairings and finds the bug; MCC admits 1 and misses it
    ours = next(line for line in out.splitlines() if line.startswith("this work"))
    mcc = next(line for line in out.splitlines() if line.startswith("MCC-style"))
    assert "2" in ours and "True" in ours
    assert "1" in mcc and "False" in mcc


def test_racy_scatter_gather_output():
    out = _run_example("racy_scatter_gather.py")
    assert "verdict: safe" in out
    assert "verdict: violation" in out
    assert "24" in out  # 4 senders -> 24 admissible pairings


def test_nonblocking_and_smtlib_output():
    out = _run_example("nonblocking_and_smtlib.py")
    assert "verdict: safe" in out
    assert "verdict: violation" in out
    assert "(set-logic" in out


def test_deadlock_detection_output():
    out = _run_example("deadlock_detection.py")
    assert "never completes" in out
    assert "replayed witness deadlocked : True" in out
    assert "is never received" in out


def test_docs_links_and_references_resolve():
    """README and docs/ must not contain dangling relative links or
    references to nonexistent modules (the CI docs job runs this same
    checker standalone)."""
    repo_root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, str(repo_root / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
