"""Tests for the baseline analyses and their relationship to the paper's claims.

The central qualitative claim (paper §2, Figure 4) is a *strict coverage
ordering*:

* MCC and the Elwakil/Yang encoding, which ignore transmission delays, admit
  only the Figure 4a pairing and therefore miss the assertion violation;
* the paper's encoding (and exhaustive exploration with delays) admits both
  4a and 4b and finds the violation.
"""

import pytest

from repro.baselines import (
    ElwakilEncoder,
    ExplicitStateExplorer,
    MccChecker,
    SleepSetExplorer,
)
from repro.baselines.explicit import canonical_matching
from repro.program import run_program
from repro.smt import CheckResult, Solver
from repro.verification import SymbolicVerifier, Verdict
from repro.workloads import (
    branching_consumer,
    figure1_program,
    nonblocking_fanin,
    pipeline,
    racy_fanin,
    scatter_gather,
)


@pytest.fixture(scope="module")
def figure1_with_assert():
    return figure1_program(assert_a_is_y=True)


@pytest.fixture(scope="module")
def figure1_trace():
    return run_program(figure1_program(assert_a_is_y=True), seed=0).trace


class TestMccBaseline:
    def test_mcc_misses_delay_dependent_bug(self, figure1_with_assert):
        result = MccChecker(figure1_with_assert).check()
        assert not result.property_violated
        assert result.pairing_count() == 1

    def test_mcc_still_finds_schedule_only_bugs(self):
        """Bugs that do not need message delays are found by MCC too."""
        program = racy_fanin(2, assert_first_from_sender0=True)
        result = MccChecker(program).check()
        assert result.property_violated

    def test_mcc_explores_all_interleavings(self, figure1_with_assert):
        result = MccChecker(figure1_with_assert).check()
        assert result.exploration.complete_runs >= 2
        assert result.exploration.deadlocks == 0

    def test_max_runs_truncation(self, figure1_with_assert):
        result = MccChecker(figure1_with_assert, max_runs=1).check()
        assert result.exploration.truncated or result.exploration.complete_runs <= 1


class TestExplicitExplorer:
    def test_finds_delay_dependent_bug(self, figure1_with_assert):
        result = ExplicitStateExplorer(figure1_with_assert).explore()
        assert "A-received-Y" in result.assertion_failures
        assert result.pairing_count() == 2
        assert result.deadlocks == 0

    def test_delay_free_mode_equals_mcc(self, figure1_with_assert):
        explicit = ExplicitStateExplorer(figure1_with_assert, delay_free=True).explore()
        mcc = MccChecker(figure1_with_assert).check()
        assert explicit.matchings == mcc.matchings

    def test_pipeline_has_single_behaviour(self):
        result = ExplicitStateExplorer(pipeline(3)).explore()
        assert result.pairing_count() == 1
        assert not result.assertion_failures

    def test_racy_fanin_behaviour_count(self):
        result = ExplicitStateExplorer(racy_fanin(3)).explore()
        assert result.pairing_count() == 6

    def test_deadlock_counted(self):
        from repro.program import ProgramBuilder

        builder = ProgramBuilder("stuck")
        builder.thread("a").recv("x")
        result = ExplicitStateExplorer(builder.build()).explore()
        assert result.deadlocks >= 1
        assert result.found_violation

    def test_summary_keys(self, figure1_with_assert):
        summary = ExplicitStateExplorer(figure1_with_assert).explore().summary()
        assert {"complete_runs", "distinct_matchings", "deadlocks"} <= set(summary)


class TestSleepSetExplorer:
    @pytest.mark.parametrize(
        "program",
        [
            figure1_program(assert_a_is_y=True),
            racy_fanin(2),
            racy_fanin(3),
            pipeline(3),
            nonblocking_fanin(2),
            branching_consumer(),
            scatter_gather(2),
        ],
        ids=lambda p: p.name,
    )
    def test_same_behaviours_as_exhaustive(self, program):
        """Sleep-set pruning must not lose behaviours (soundness of reduction)."""
        full = ExplicitStateExplorer(program).explore()
        reduced = SleepSetExplorer(program).explore()
        assert reduced.matchings == full.matchings
        assert reduced.assertion_failures == full.assertion_failures
        assert reduced.deadlocks == 0 if full.deadlocks == 0 else True

    def test_reduction_explores_fewer_transitions(self):
        program = racy_fanin(3)
        full = ExplicitStateExplorer(program).explore()
        reduced = SleepSetExplorer(program).explore()
        assert reduced.transitions_explored <= full.transitions_explored


class TestElwakilBaseline:
    def test_misses_delay_dependent_bug(self, figure1_trace):
        problem = ElwakilEncoder().encode(figure1_trace)
        solver = Solver()
        solver.add_all(problem.assertions())
        assert solver.check() is CheckResult.UNSAT

    def test_faithful_encoding_finds_it(self, figure1_trace):
        result = SymbolicVerifier().verify_trace(figure1_trace)
        assert result.verdict is Verdict.VIOLATION

    def test_elwakil_admits_only_figure4a(self):
        """Pairing enumeration under the no-overtaking constraints yields 1."""
        trace = run_program(figure1_program(), seed=0).trace
        encoder = ElwakilEncoder()
        problem = encoder.encode(trace, properties=[])
        from repro.encoding.witness import decode_witness
        from repro.encoding.variables import match_var
        from repro.smt import And, Eq, IntVal, Not

        solver = Solver()
        solver.add_all(problem.assertions(include_property=False))
        pairings = []
        while solver.check() is CheckResult.SAT:
            witness = decode_witness(problem, solver.model())
            pairings.append(witness.matching)
            solver.add(
                Not(
                    And(
                        [
                            Eq(match_var(r), IntVal(s))
                            for r, s in witness.matching.items()
                        ]
                    )
                )
            )
            if len(pairings) > 5:
                break
        assert len(pairings) == 1

    def test_elwakil_still_finds_delay_independent_bugs(self):
        trace = run_program(racy_fanin(2, assert_first_from_sender0=True), seed=0).trace
        problem = ElwakilEncoder().encode(trace)
        solver = Solver()
        solver.add_all(problem.assertions())
        assert solver.check() is CheckResult.SAT


class TestCrossValidation:
    """Symbolic encoding vs exhaustive exploration on several workloads."""

    @pytest.mark.parametrize(
        "program",
        [
            figure1_program(),
            racy_fanin(2),
            racy_fanin(3),
            pipeline(3),
            nonblocking_fanin(2),
            scatter_gather(2),
        ],
        ids=lambda p: p.name,
    )
    def test_symbolic_pairings_equal_explicit_behaviours(self, program):
        run = run_program(program, seed=0)
        verifier = SymbolicVerifier()
        symbolic = {
            canonical_matching(run.trace, m)
            for m in verifier.enumerate_pairings(run.trace)
        }
        explicit = ExplicitStateExplorer(program).explore().matchings
        assert symbolic == explicit

    @pytest.mark.parametrize(
        "program, expect_violation",
        [
            (figure1_program(assert_a_is_y=True), True),
            (racy_fanin(3, assert_first_from_sender0=True), True),
            (pipeline(4), False),
            (scatter_gather(2), False),
            (nonblocking_fanin(2), True),
        ],
        ids=lambda value: getattr(value, "name", str(value)),
    )
    def test_verdicts_agree_with_ground_truth(self, program, expect_violation):
        symbolic = SymbolicVerifier().verify_program(program, seed=0)
        explicit = ExplicitStateExplorer(program).explore()
        assert (symbolic.verdict is Verdict.VIOLATION) == expect_violation
        assert bool(explicit.assertion_failures) == expect_violation
