from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).with_name("README.md")

setup(
    name="repro-mcapi-smt",
    version="2.0.0",
    description=(
        "Reproduction of 'Symbolically Modeling Concurrent MCAPI Executions' "
        "(PPoPP 2011): trace recording, SMT encoding, and a session-based "
        "verification API over pluggable incremental solver backends"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    install_requires=[],  # intentionally dependency-free
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-cov", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "mcapi-verify = repro.verification.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Software Development :: Testing",
        "Topic :: Scientific/Engineering",
    ],
    keywords="smt verification mcapi message-passing concurrency dpllt",
)
